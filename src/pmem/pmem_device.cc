#include "pmem/pmem_device.hh"

#include <algorithm>
#include <cstring>

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include "common/rand.hh"
#include "obs/metrics.hh"
#include "obs/trace_context.hh"

namespace specpmt::pmem
{

namespace
{

/**
 * Process-wide device traffic counters, aggregated over every device
 * instance (per-instance exact counts stay in DeviceStats). The data
 * path never touches these: each device bumps its plain DeviceStats
 * members and publishMetrics() flushes the delta in bulk, so the
 * emulated-store fast path pays nothing for the registry.
 */
struct DeviceMetrics
{
    obs::Counter &stores;
    obs::Counter &storeBytes;
    obs::Counter &loads;
    std::array<obs::Counter *, 3> clwbs; ///< indexed by TrafficClass
    obs::Counter &fences;
    obs::Counter &crashes;
    obs::Counter &mediaReadErrors;
    obs::Counter &mediaWriteErrors;
    obs::Counter &mediaPoisonInjected;
    obs::Counter &mediaEioInjected;
    obs::Counter &mediaCorruptInjected;

    static DeviceMetrics &
    get()
    {
        auto &reg = obs::Registry::global();
        static DeviceMetrics m{
            reg.counter("specpmt_pmem_stores_total",
                        "stores issued to emulated PM"),
            reg.counter("specpmt_pmem_store_bytes_total",
                        "bytes stored to emulated PM"),
            reg.counter("specpmt_pmem_loads_total",
                        "loads from emulated PM"),
            {&reg.counter("specpmt_pmem_clwbs_total",
                          "effective cache-line flushes by traffic class",
                          {{"class", "data"}}),
             &reg.counter("specpmt_pmem_clwbs_total", {},
                          {{"class", "log"}}),
             &reg.counter("specpmt_pmem_clwbs_total", {},
                          {{"class", "meta"}})},
            reg.counter("specpmt_pmem_fences_total",
                        "store fences (persist barriers)"),
            reg.counter("specpmt_pmem_crashes_total",
                        "simulated crashes / image resets"),
            reg.counter("specpmt_pm_media_read_errors_total",
                        "loads rejected by a poisoned media line"),
            reg.counter("specpmt_pm_media_write_errors_total",
                        "stores rejected by an EIO media line"),
            reg.counter("specpmt_pm_media_faults_injected_total",
                        "media-fault lines installed by fault plans",
                        {{"kind", "poison"}}),
            reg.counter("specpmt_pm_media_faults_injected_total", {},
                        {{"kind", "eio"}}),
            reg.counter("specpmt_pm_media_faults_injected_total", {},
                        {{"kind", "corrupt"}}),
        };
        return m;
    }
};

/**
 * Per-thread media-fault suppression depth (see MediaFaultSuppress).
 * Thread-local so a worker aborting a transaction never masks faults
 * for concurrently running transactions on other threads.
 */
thread_local int t_mediaSuppress = 0;

/**
 * Charge one effective line flush to the calling thread's PM cost
 * vector (obs::TraceContext), next to the DeviceStats bump: a few
 * thread-local adds, so the cost of a traced request's flushes is
 * known per thread without touching the registry on the data path.
 */
void
chargeFlush(TrafficClass cls)
{
    auto &cost = obs::traceContext().cost;
    ++cost.flushes;
    cost.flushBytes += kCacheLineSize;
    switch (cls) {
      case TrafficClass::Data:
        ++cost.flushesData;
        break;
      case TrafficClass::Log:
        ++cost.flushesLog;
        break;
      case TrafficClass::Meta:
        ++cost.flushesMeta;
        break;
    }
}

/** add(current - published) and advance published; for bulk flushes. */
void
flushDelta(obs::Counter &counter, std::uint64_t current,
           std::uint64_t &published)
{
    if (current != published) {
        counter.add(current - published);
        published = current;
    }
}

} // namespace

const char *
mediaErrorKindName(MediaErrorKind kind)
{
    switch (kind) {
      case MediaErrorKind::PoisonedRead:
        return "poisoned-read";
      case MediaErrorKind::WriteEio:
        return "write-eio";
    }
    return "?";
}

MediaError::MediaError(MediaErrorKind kind, PmOff off)
    : std::runtime_error(std::string("pm media error: ") +
                         mediaErrorKindName(kind) + " at offset " +
                         std::to_string(off)),
      kind_(kind), off_(off)
{
}

MediaFaultSuppress::MediaFaultSuppress()
{
    ++t_mediaSuppress;
}

MediaFaultSuppress::~MediaFaultSuppress()
{
    --t_mediaSuppress;
}

PmemDevice::PmemDevice(std::size_t size, const TimingParams &params)
    : timing_(params)
{
    const std::size_t rounded =
        (size + kCacheLineSize - 1) & ~(kCacheLineSize - 1);
    SPECPMT_ASSERT(rounded > 0);
    volatileImage_.assign(rounded, 0);
    persistentImage_.assign(rounded, 0);
}

PmemDevice::PmemDevice(std::size_t size, const std::string &backingPath,
                       const TimingParams &params)
    : PmemDevice(size, params)
{
    const std::size_t rounded = persistentImage_.size();
    backingFd_ = ::open(backingPath.c_str(), O_RDWR | O_CREAT, 0644);
    if (backingFd_ < 0)
        SPECPMT_FATAL("cannot open pm backing file %s",
                      backingPath.c_str());
    struct stat st;
    if (::fstat(backingFd_, &st) != 0)
        SPECPMT_FATAL("cannot stat pm backing file %s",
                      backingPath.c_str());
    hadExistingData_ =
        st.st_size == static_cast<off_t>(rounded);
    if (!hadExistingData_ &&
        ::ftruncate(backingFd_, static_cast<off_t>(rounded)) != 0)
        SPECPMT_FATAL("cannot size pm backing file %s",
                      backingPath.c_str());
    void *map = ::mmap(nullptr, rounded, PROT_READ | PROT_WRITE,
                       MAP_SHARED, backingFd_, 0);
    if (map == MAP_FAILED)
        SPECPMT_FATAL("cannot mmap pm backing file %s",
                      backingPath.c_str());
    backingMap_ = static_cast<std::uint8_t *>(map);
    if (hadExistingData_) {
        // Re-open: the mirrored image IS the persistent state the
        // previous process left behind (page cache survives SIGKILL).
        std::memcpy(persistentImage_.data(), backingMap_, rounded);
        std::memcpy(volatileImage_.data(), backingMap_, rounded);
    } else {
        std::memset(backingMap_, 0, rounded);
    }
}

PmemDevice::~PmemDevice()
{
    publishMetrics();
    if (backingMap_ != nullptr)
        ::munmap(backingMap_, persistentImage_.size());
    if (backingFd_ >= 0)
        ::close(backingFd_);
}

void
PmemDevice::mirrorLine(std::uint64_t line)
{
    if (backingMap_ != nullptr) {
        std::memcpy(backingMap_ + line * kCacheLineSize,
                    persistentImage_.data() + line * kCacheLineSize,
                    kCacheLineSize);
    }
}

void
PmemDevice::mirrorAll()
{
    if (backingMap_ != nullptr) {
        std::memcpy(backingMap_, persistentImage_.data(),
                    persistentImage_.size());
    }
}

void
PmemDevice::checkMediaLines(
    const std::unordered_set<std::uint64_t> &lines, MediaErrorKind kind,
    PmOff off, std::size_t size) const
{
    if (lines.empty() || t_mediaSuppress > 0)
        return;
    const std::uint64_t first = lineIndex(off);
    const std::uint64_t last = lineIndex(off + size - 1);
    for (std::uint64_t line = first; line <= last; ++line) {
        if (lines.count(line)) {
            auto *self = const_cast<PmemDevice *>(this);
            if (kind == MediaErrorKind::PoisonedRead)
                ++self->stats_.mediaReadErrors;
            else
                ++self->stats_.mediaWriteErrors;
            throw MediaError(kind, line * kCacheLineSize);
        }
    }
}

void
PmemDevice::applyFaultPlan(const FaultPlan &plan)
{
    std::lock_guard<std::mutex> guard(mutex_);
    poisonLines_.clear();
    eioLines_.clear();
    const std::uint64_t firstLine = lineIndex(plan.regionStart);
    const PmOff end = plan.regionEnd == 0
        ? static_cast<PmOff>(persistentImage_.size())
        : plan.regionEnd;
    SPECPMT_ASSERT(end > plan.regionStart);
    const std::uint64_t endLine = lineIndex(end - 1) + 1;
    const std::uint64_t span = endLine - firstLine;
    Rng rng(plan.seed);

    auto draw = [&](std::unordered_set<std::uint64_t> &into,
                    std::size_t want) {
        want = std::min<std::size_t>(want, span);
        // Bounded rejection sampling; deterministic for a given seed.
        std::size_t attempts = 0;
        while (into.size() < want && attempts < want * 64 + 64) {
            into.insert(firstLine + rng.below(span));
            ++attempts;
        }
    };
    draw(poisonLines_, plan.poisonLines);
    draw(eioLines_, plan.eioLines);

    // Latent corruption targets lines that actually hold data, so the
    // flip has a CRC seal to defeat; flipping all-zero scratch space
    // would never surface anywhere.
    std::size_t corrupted = 0;
    if (plan.corruptLines > 0) {
        std::vector<std::uint64_t> nonzero;
        for (std::uint64_t line = firstLine; line < endLine; ++line) {
            const std::uint8_t *p =
                persistentImage_.data() + line * kCacheLineSize;
            bool any = false;
            for (std::size_t i = 0; i < kCacheLineSize; ++i)
                if (p[i] != 0) {
                    any = true;
                    break;
                }
            if (any)
                nonzero.push_back(line);
        }
        std::unordered_set<std::uint64_t> picked;
        std::size_t attempts = 0;
        while (!nonzero.empty() && picked.size() < plan.corruptLines &&
               attempts < plan.corruptLines * 64 + 64) {
            ++attempts;
            const std::uint64_t line =
                nonzero[rng.below(nonzero.size())];
            if (!picked.insert(line).second)
                continue;
            const std::size_t byte = rng.below(kCacheLineSize);
            const unsigned bit = static_cast<unsigned>(rng.below(8));
            persistentImage_[line * kCacheLineSize + byte] ^=
                static_cast<std::uint8_t>(1u << bit);
            mirrorLine(line);
            ++corrupted;
        }
    }

    auto &m = DeviceMetrics::get();
    m.mediaPoisonInjected.add(poisonLines_.size());
    m.mediaEioInjected.add(eioLines_.size());
    m.mediaCorruptInjected.add(corrupted);
}

void
PmemDevice::clearFaultPlan()
{
    std::lock_guard<std::mutex> guard(mutex_);
    poisonLines_.clear();
    eioLines_.clear();
}

void
PmemDevice::publishMetrics()
{
    std::lock_guard<std::mutex> guard(mutex_);
    auto &m = DeviceMetrics::get();
    flushDelta(m.stores, stats_.stores, published_.stores);
    flushDelta(m.storeBytes, stats_.storeBytes, published_.storeBytes);
    flushDelta(m.loads, stats_.loads, published_.loads);
    for (unsigned cls = 0; cls < 3; ++cls)
        flushDelta(*m.clwbs[cls], stats_.clwbs[cls],
                   published_.clwbs[cls]);
    flushDelta(m.fences, stats_.fences, published_.fences);
    flushDelta(m.crashes, stats_.crashes, published_.crashes);
    flushDelta(m.mediaReadErrors, stats_.mediaReadErrors,
               published_.mediaReadErrors);
    flushDelta(m.mediaWriteErrors, stats_.mediaWriteErrors,
               published_.mediaWriteErrors);
    timing_.publishMetrics();
}

void
PmemDevice::checkRange(PmOff off, std::size_t size) const
{
    if (off + size > volatileImage_.size() || off + size < off) {
        SPECPMT_PANIC("pmem access out of range: off=%llu size=%zu cap=%zu",
                      static_cast<unsigned long long>(off), size,
                      volatileImage_.size());
    }
}

void
PmemDevice::armCrash(long ops)
{
    std::lock_guard<std::mutex> guard(mutex_);
    if (ops < 0) {
        countdown_.reset();
        return;
    }
    countdown_ = std::make_shared<CrashCountdown>();
    countdown_->remaining.store(ops, std::memory_order_relaxed);
    crashThread_ = std::this_thread::get_id();
}

void
PmemDevice::armCrash(std::shared_ptr<CrashCountdown> countdown)
{
    std::lock_guard<std::mutex> guard(mutex_);
    countdown_ = std::move(countdown);
    crashThread_ = std::this_thread::get_id();
}

std::shared_ptr<CrashCountdown>
PmemDevice::crashCountdown() const
{
    std::lock_guard<std::mutex> guard(mutex_);
    return countdown_;
}

void
PmemDevice::injectFault(DeviceFault fault)
{
    std::lock_guard<std::mutex> guard(mutex_);
    fault_ = fault;
}

std::uint64_t
PmemDevice::persistEventId() const
{
    std::lock_guard<std::mutex> guard(mutex_);
    return persistEvents_;
}

void
PmemDevice::maybeCrash()
{
    ++persistEvents_;
    if (!countdown_ || std::this_thread::get_id() != crashThread_)
        return;
    // Only the arming thread reaches this point, so plain relaxed
    // load/store on the (possibly device-shared) counter is race-free.
    const long remaining =
        countdown_->remaining.load(std::memory_order_relaxed);
    if (remaining < 0)
        return;
    if (remaining == 0) {
        countdown_->remaining.store(-1, std::memory_order_relaxed);
        countdown_->fired.store(true, std::memory_order_relaxed);
        countdown_->firedEventId.store(persistEvents_,
                                       std::memory_order_relaxed);
        countdown_.reset();
        throw SimulatedCrash();
    }
    countdown_->remaining.store(remaining - 1,
                                std::memory_order_relaxed);
}

void
PmemDevice::store(PmOff off, const void *src, std::size_t size)
{
    if (size == 0)
        return; // avoid memcpy(nullptr) UB and line-index underflow
    std::lock_guard<std::mutex> guard(mutex_);
    maybeCrash();
    checkRange(off, size);
    checkMediaLines(eioLines_, MediaErrorKind::WriteEio, off, size);
    std::memcpy(volatileImage_.data() + off, src, size);
    const std::uint64_t first = lineIndex(off);
    const std::uint64_t last = lineIndex(off + size - 1);
    for (std::uint64_t line = first; line <= last; ++line)
        dirtyLines_.insert(line);
    ++stats_.stores;
    stats_.storeBytes += size;
    if (timed())
        timing_.onStore(last - first + 1);
}

void
PmemDevice::load(PmOff off, void *dst, std::size_t size) const
{
    if (size == 0)
        return; // zero-length reads may pass a null buffer
    std::lock_guard<std::mutex> guard(mutex_);
    checkRange(off, size);
    checkMediaLines(poisonLines_, MediaErrorKind::PoisonedRead, off,
                    size);
    std::memcpy(dst, volatileImage_.data() + off, size);
    auto *self = const_cast<PmemDevice *>(this);
    ++self->stats_.loads;
    if (timed())
        self->timing_.onLoad(lineSpan(off, size));
}

void
PmemDevice::clwbLocked(PmOff off, TrafficClass cls)
{
    checkRange(off, 1);
    const std::uint64_t line = lineIndex(off);
    // clwb of a clean line is a no-op on real hardware (nothing to
    // write back); modelling it as free keeps runtimes honest about
    // redundant flushes without inflating their traffic counters.
    if (!dirtyLines_.count(line))
        return;
    maybeCrash();
    Line snapshot;
    std::memcpy(snapshot.data(),
                volatileImage_.data() + line * kCacheLineSize,
                kCacheLineSize);
    pendingLines_[line] = snapshot;
    dirtyLines_.erase(line);
    ++stats_.clwbs[static_cast<unsigned>(cls)];
    chargeFlush(cls);
    if (timed())
        timing_.onClwb(line);
    else if (timedThreadOnly_)
        timing_.onClwbAsync(line);
}

void
PmemDevice::clwb(PmOff off, TrafficClass cls)
{
    std::lock_guard<std::mutex> guard(mutex_);
    clwbLocked(off, cls);
}

void
PmemDevice::clwbRange(PmOff off, std::size_t size, TrafficClass cls)
{
    if (size == 0)
        return;
    std::lock_guard<std::mutex> guard(mutex_);
    const std::uint64_t first = lineIndex(off);
    const std::uint64_t last = lineIndex(off + size - 1);
    for (std::uint64_t line = first; line <= last; ++line)
        clwbLocked(line * kCacheLineSize, cls);
}

void
PmemDevice::sfence()
{
    std::lock_guard<std::mutex> guard(mutex_);
    maybeCrash();
    if (fault_ != DeviceFault::DropFences) {
        for (const auto &[line, snapshot] : pendingLines_) {
            std::memcpy(persistentImage_.data() +
                            line * kCacheLineSize,
                        snapshot.data(), kCacheLineSize);
            mirrorLine(line);
        }
        pendingLines_.clear();
    }
    ++stats_.fences;
    ++obs::traceContext().cost.fences;
    if (timed())
        timing_.onSfence();
}

void
PmemDevice::ntstore(PmOff off, const void *src, std::size_t size,
                    TrafficClass cls)
{
    std::lock_guard<std::mutex> guard(mutex_);
    maybeCrash();
    checkRange(off, size);
    checkMediaLines(eioLines_, MediaErrorKind::WriteEio, off, size);
    std::memcpy(volatileImage_.data() + off, src, size);
    ++stats_.stores;
    stats_.storeBytes += size;
    const std::uint64_t first = lineIndex(off);
    const std::uint64_t last = lineIndex(off + size - 1);
    for (std::uint64_t line = first; line <= last; ++line) {
        Line snapshot;
        std::memcpy(snapshot.data(),
                    volatileImage_.data() + line * kCacheLineSize,
                    kCacheLineSize);
        pendingLines_[line] = snapshot;
        dirtyLines_.erase(line);
        ++stats_.clwbs[static_cast<unsigned>(cls)];
        chargeFlush(cls);
            if (timed())
            timing_.onClwb(line);
        else if (timedThreadOnly_)
            timing_.onClwbAsync(line);
    }
}

void
PmemDevice::adrPersist(PmOff off, std::size_t size, TrafficClass cls)
{
    if (size == 0)
        return;
    std::lock_guard<std::mutex> guard(mutex_);
    maybeCrash();
    checkRange(off, size);
    const std::uint64_t first = lineIndex(off);
    const std::uint64_t last = lineIndex(off + size - 1);
    for (std::uint64_t line = first; line <= last; ++line) {
        std::memcpy(persistentImage_.data() + line * kCacheLineSize,
                    volatileImage_.data() + line * kCacheLineSize,
                    kCacheLineSize);
        mirrorLine(line);
        dirtyLines_.erase(line);
        pendingLines_.erase(line);
        ++stats_.clwbs[static_cast<unsigned>(cls)];
        chargeFlush(cls);
            if (timed())
            timing_.onClwb(line);
        else if (timedThreadOnly_)
            timing_.onClwbAsync(line);
    }
}

std::vector<std::uint8_t>
PmemDevice::crashImage(const CrashPolicy &policy) const
{
    std::lock_guard<std::mutex> guard(mutex_);
    std::vector<std::uint8_t> image = persistentImage_;
    Rng rng(policy.seed);

    auto persists = [&](void) -> bool {
        switch (policy.mode) {
          case CrashMode::NothingExtra:
            return false;
          case CrashMode::EverythingDrains:
            return true;
          case CrashMode::RandomSubset:
            return rng.chance(policy.persistProbability);
        }
        return false;
    };

    // Flushed-but-unfenced snapshots may have drained. Iterate in
    // sorted line order so RandomSubset draws are reproducible.
    std::vector<std::uint64_t> pending_lines;
    pending_lines.reserve(pendingLines_.size());
    for (const auto &[line, snapshot] : pendingLines_)
        pending_lines.push_back(line);
    std::sort(pending_lines.begin(), pending_lines.end());
    for (std::uint64_t line : pending_lines) {
        if (persists()) {
            std::memcpy(image.data() + line * kCacheLineSize,
                        pendingLines_.at(line).data(), kCacheLineSize);
        }
    }

    // Dirty lines may have been evicted with their current contents.
    std::vector<std::uint64_t> dirty_lines(dirtyLines_.begin(),
                                           dirtyLines_.end());
    std::sort(dirty_lines.begin(), dirty_lines.end());
    for (std::uint64_t line : dirty_lines) {
        if (persists()) {
            std::memcpy(image.data() + line * kCacheLineSize,
                        volatileImage_.data() + line * kCacheLineSize,
                        kCacheLineSize);
        }
    }
    return image;
}

void
PmemDevice::simulateCrash(const CrashPolicy &policy)
{
    auto image = crashImage(policy);
    std::lock_guard<std::mutex> guard(mutex_);
    persistentImage_ = image;
    volatileImage_ = std::move(image);
    mirrorAll();
    dirtyLines_.clear();
    pendingLines_.clear();
    ++stats_.crashes;
}

void
PmemDevice::resetFromImage(const std::vector<std::uint8_t> &image)
{
    std::lock_guard<std::mutex> guard(mutex_);
    SPECPMT_ASSERT(image.size() == volatileImage_.size());
    volatileImage_ = image;
    persistentImage_ = image;
    mirrorAll();
    dirtyLines_.clear();
    pendingLines_.clear();
    ++stats_.crashes;
}

void
PmemDevice::drainAll(TrafficClass cls)
{
    std::lock_guard<std::mutex> guard(mutex_);
    std::vector<std::uint64_t> dirty(dirtyLines_.begin(),
                                     dirtyLines_.end());
    std::sort(dirty.begin(), dirty.end());
    for (std::uint64_t line : dirty)
        clwbLocked(line * kCacheLineSize, cls);
    for (const auto &[line, snapshot] : pendingLines_) {
        std::memcpy(persistentImage_.data() + line * kCacheLineSize,
                    snapshot.data(), kCacheLineSize);
        mirrorLine(line);
    }
    pendingLines_.clear();
    ++stats_.fences;
    ++obs::traceContext().cost.fences;
    if (timed())
        timing_.onSfence();
}

bool
PmemDevice::isLineDirty(PmOff off) const
{
    std::lock_guard<std::mutex> guard(mutex_);
    return dirtyLines_.count(lineIndex(off)) > 0;
}

std::size_t
PmemDevice::dirtyLineCount() const
{
    std::lock_guard<std::mutex> guard(mutex_);
    return dirtyLines_.size();
}

} // namespace specpmt::pmem
