/**
 * @file
 * A persistent memory pool: a segregated-free-list allocator over a
 * PmemDevice plus a small crash-safe root directory.
 *
 * Allocator metadata (free lists, allocation sizes) lives in DRAM and
 * is *not* crash consistent — this mirrors the paper's methodology,
 * which ports STAMP with libvmmalloc (Section 7.1.1): heap contents
 * are persistent, heap bookkeeping is volatile. Crash-consistency of
 * application data is entirely the transaction runtime's job.
 *
 * The first page of the pool is a root directory of named persistent
 * offsets (log heads, data structure roots). Root writes are persisted
 * eagerly (clwb + sfence) so recovery can always locate its anchors.
 */

#ifndef SPECPMT_PMEM_PMEM_POOL_HH
#define SPECPMT_PMEM_PMEM_POOL_HH

#include <cstdint>
#include <mutex>
#include <stdexcept>
#include <unordered_map>
#include <vector>

#include "common/types.hh"
#include "pmem/pmem_device.hh"

namespace specpmt::pmem
{

/**
 * Thrown by alloc()/allocAligned() when the pool cannot satisfy a
 * request. Survivable: the caller aborts its transaction and the
 * service degrades to read-only instead of dying — log-space
 * exhaustion is an operational condition, not a programming error.
 */
class PoolExhausted : public std::runtime_error
{
  public:
    PoolExhausted(std::size_t need, PmOff at, std::size_t capacity);

    std::size_t need() const { return need_; }
    std::size_t capacity() const { return capacity_; }

  private:
    std::size_t need_;
    std::size_t capacity_;
};

/**
 * Allocator + root directory over one PmemDevice.
 */
class PmemPool
{
  public:
    /** Number of root directory slots (first pool page). */
    static constexpr unsigned kRootSlots = 64;

    /** Wrap @p device; the pool does not own the device. */
    explicit PmemPool(PmemDevice &device);

    /** The underlying device. */
    PmemDevice &device() { return device_; }
    const PmemDevice &device() const { return device_; }

    /**
     * Allocate @p size bytes (16-byte aligned).
     * @return The pool offset, never kPmNull.
     */
    PmOff alloc(std::size_t size);

    /**
     * Allocate with the start aligned to @p alignment (a power of 2,
     * at least 16). Log blocks use cache-line alignment so a record
     * flush never drags in a neighbour's bytes.
     */
    PmOff allocAligned(std::size_t size, std::size_t alignment);

    /** Release an allocation previously returned by alloc(). */
    void free(PmOff off);

    /** Size of the allocation at @p off. */
    std::size_t allocationSize(PmOff off) const;

    /** Bytes currently allocated (live). */
    std::size_t bytesAllocated() const;

    /** High-water mark of live bytes. */
    std::size_t peakBytesAllocated() const;

    /**
     * Persistently publish the root offset in slot @p slot
     * (clwb + sfence so it survives any crash).
     */
    void setRoot(unsigned slot, PmOff value);

    /** Read root slot @p slot (kPmNull if never set). */
    PmOff getRoot(unsigned slot) const;

    /**
     * Re-register an allocation discovered in a re-opened pool (e.g.
     * a surviving log block found by recovery), so that free() and
     * allocationSize() work on it and fresh allocations steer clear.
     */
    void adopt(PmOff off, std::size_t size);

    /**
     * Raise the bump pointer to at least @p watermark so every future
     * allocation lands at or above it. Used when a pool is re-created
     * over a salvaged image whose allocation history is unknown (the
     * offline recovery audit): recovery-time allocations must never
     * overwrite pre-crash evidence the walkers still have to read.
     */
    void reserveBelow(PmOff watermark);

    /**
     * Reset the volatile allocator state, as happens when a process
     * re-opens a pool after a crash. Persistent contents (including
     * roots) are untouched; all previous allocations are forgotten
     * and the heap is re-opened above @p preserve_watermark so that
     * recovery code can re-read old data before the application
     * reallocates over it.
     */
    void reopenAfterCrash();

  private:
    static constexpr std::size_t kMinAlloc = 16;
    static constexpr unsigned kNumClasses = 12; // 16B .. 32KB

    static unsigned sizeClass(std::size_t size);
    static std::size_t classBytes(unsigned cls);

    PmemDevice &device_;
    mutable std::mutex mutex_;
    /** Free lists of offsets per size class (volatile). */
    std::vector<std::vector<PmOff>> freeLists_;
    /** Bump pointer for fresh carves. */
    PmOff bump_;
    /** Live allocation sizes (volatile bookkeeping). */
    std::unordered_map<PmOff, std::size_t> live_;
    std::size_t bytesLive_ = 0;
    std::size_t peakBytesLive_ = 0;
};

} // namespace specpmt::pmem

#endif // SPECPMT_PMEM_PMEM_POOL_HH
