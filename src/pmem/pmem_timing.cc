#include "pmem/pmem_timing.hh"

#include <array>

#include "common/logging.hh"
#include "obs/metrics.hh"

namespace specpmt::pmem
{

namespace
{

/** WPQ behaviour counters, registered once per process. */
struct WpqMetrics
{
    obs::Counter &merges;
    obs::Counter &stalls;
    obs::Counter &lineWrites;
    obs::Counter &combinedWrites;

    static WpqMetrics &
    get()
    {
        static WpqMetrics m{
            obs::Registry::global().counter(
                "specpmt_pmem_wpq_merges_total",
                "clwbs absorbed by an already-pending WPQ line"),
            obs::Registry::global().counter(
                "specpmt_pmem_wpq_stalls_total",
                "clwbs that stalled the core on a full WPQ"),
            obs::Registry::global().counter(
                "specpmt_pmem_pm_line_writes_total",
                "cache-line writes drained to PM media"),
            obs::Registry::global().counter(
                "specpmt_pmem_combined_writes_total",
                "media writes combined within an XPLine"),
        };
        return m;
    }
};

/** Global sim-ns attribution counters, one per SimNsEvent. */
std::array<obs::Counter *, static_cast<unsigned>(SimNsEvent::kCount)> &
simNsCounters()
{
    static std::array<obs::Counter *,
                      static_cast<unsigned>(SimNsEvent::kCount)>
        counters = [] {
            constexpr const char *kNames[] = {
                "store",      "load",      "pm_read",     "compute",
                "wpq_accept", "wpq_stall", "fence_drain", "sfence",
            };
            std::array<obs::Counter *,
                       static_cast<unsigned>(SimNsEvent::kCount)>
                out{};
            for (unsigned i = 0;
                 i < static_cast<unsigned>(SimNsEvent::kCount); ++i) {
                out[i] = &obs::Registry::global().counter(
                    "specpmt_sim_ns_total",
                    "simulated nanoseconds by attributed event",
                    {{"event", kNames[i]}});
            }
            return out;
        }();
    return counters;
}

/** add(current - published) and advance published; for bulk flushes. */
template <typename T>
void
flushDelta(obs::Counter &counter, T current, T &published)
{
    if (current != published) {
        counter.add(current - published);
        published = current;
    }
}

} // namespace

void
PmemTiming::publishMetrics()
{
    auto &sim_ns = simNsCounters();
    for (unsigned i = 0; i < static_cast<unsigned>(SimNsEvent::kCount);
         ++i) {
        flushDelta(*sim_ns[i], simNsByEvent_[i],
                   published_.simNsByEvent[i]);
    }
    auto &wpq = WpqMetrics::get();
    flushDelta(wpq.merges, wpqMerges_, published_.wpqMerges);
    flushDelta(wpq.stalls, wpqStalls_, published_.wpqStalls);
    flushDelta(wpq.lineWrites, pmLineWrites_, published_.pmLineWrites);
    flushDelta(wpq.combinedWrites, combinedWrites_,
               published_.combinedWrites);
}

PmemTiming::Channel &
PmemTiming::channelFor(std::uint64_t line_index)
{
    const std::uint64_t xp_line =
        line_index / (kXpLineSize / kCacheLineSize);
    return channels_[xp_line % channels_.size()];
}

void
PmemTiming::retireCompleted()
{
    for (auto &channel : channels_) {
        while (!channel.inflight.empty() &&
               channel.inflight.front().done <= now_) {
            channel.inflight.pop_front();
        }
    }
}

std::size_t
PmemTiming::pendingCount() const
{
    std::size_t count = 0;
    for (const auto &channel : channels_)
        count += channel.inflight.size();
    return count;
}

void
PmemTiming::waitForSlot()
{
    SimNs earliest = ~SimNs{0};
    for (const auto &channel : channels_) {
        if (!channel.inflight.empty() &&
            channel.inflight.front().done < earliest) {
            earliest = channel.inflight.front().done;
        }
    }
    SPECPMT_ASSERT(earliest != ~SimNs{0});
    if (earliest > now_)
        now_ = earliest;
    retireCompleted();
}

bool
PmemTiming::mergeIfPending(std::uint64_t line_index)
{
    for (const auto &write : channelFor(line_index).inflight) {
        if (write.line == line_index)
            return true;
    }
    return false;
}

SimNs
PmemTiming::enqueueDrain(std::uint64_t line_index, bool async)
{
    Channel &channel = channelFor(line_index);
    const std::uint64_t xp_line =
        line_index / (kXpLineSize / kCacheLineSize);
    const SimNs write_ns = (xp_line == channel.lastXpLine)
        ? params_.pmWriteSameXpLineNs
        : params_.pmWriteNs;
    channel.lastXpLine = xp_line;

    const SimNs start = channel.inflight.empty()
        ? now_
        : (channel.inflight.back().done > now_
               ? channel.inflight.back().done
               : now_);
    ++pmLineWrites_;
    if (write_ns == params_.pmWriteSameXpLineNs)
        ++combinedWrites_;
    const SimNs done = start + write_ns;
    channel.inflight.push_back({done, line_index, async});
    return done;
}

void
PmemTiming::onClwb(std::uint64_t line_index)
{
    retireCompleted();
    if (mergeIfPending(line_index)) {
        now_ += params_.wpqAcceptNs;
        charge(SimNsEvent::WpqAccept, params_.wpqAcceptNs);
        ++wpqMerges_;
        return;
    }
    // A full queue back-pressures the core: media drain bandwidth is
    // the throughput limit for write-heavy phases.
    const SimNs before = now_;
    bool stalled = false;
    while (pendingCount() >= params_.wpqLines) {
        waitForSlot();
        stalled = true;
    }
    if (stalled) {
        charge(SimNsEvent::WpqStall, now_ - before);
        ++wpqStalls_;
    }
    now_ += params_.wpqAcceptNs;
    charge(SimNsEvent::WpqAccept, params_.wpqAcceptNs);
    enqueueDrain(line_index, false);
}

void
PmemTiming::onClwbAsync(std::uint64_t line_index)
{
    retireCompleted();
    if (mergeIfPending(line_index))
        return;
    // Background cores do not stall this clock on a full queue, but
    // their writes still occupy drain slots and bandwidth.
    enqueueDrain(line_index, true);
}

void
PmemTiming::onSfence()
{
    retireCompleted();
    // Strict persist: wait for the youngest *synchronous* write on
    // every channel (async writes ahead of it have already serialized
    // into the same channel, so they are implicitly covered).
    SimNs last_sync = 0;
    for (const auto &channel : channels_) {
        for (const auto &write : channel.inflight) {
            if (!write.async && write.done > last_sync)
                last_sync = write.done;
        }
    }
    if (last_sync > now_) {
        charge(SimNsEvent::FenceDrain, last_sync - now_);
        now_ = last_sync;
    }
    retireCompleted();
    now_ += params_.sfenceNs;
    charge(SimNsEvent::Sfence, params_.sfenceNs);
}

} // namespace specpmt::pmem
