/**
 * @file
 * A thin typed view over a pool offset, for example/application code
 * that wants pointer-ish ergonomics over PmOff plumbing.
 */

#ifndef SPECPMT_PMEM_PMEM_PTR_HH
#define SPECPMT_PMEM_PMEM_PTR_HH

#include <type_traits>

#include "common/types.hh"
#include "pmem/pmem_device.hh"

namespace specpmt::pmem
{

/**
 * Typed persistent pointer: (device, offset). Reads go straight to the
 * device; writes must flow through a transaction runtime to be crash
 * consistent, so this class only offers reads and address arithmetic.
 */
template <typename T>
class PmemPtr
{
    static_assert(std::is_trivially_copyable_v<T>,
                  "persistent objects must be trivially copyable");

  public:
    PmemPtr() : device_(nullptr), off_(kPmNull) {}

    PmemPtr(PmemDevice &device, PmOff off) : device_(&device), off_(off) {}

    /** The raw pool offset. */
    PmOff off() const { return off_; }

    /** True unless this is a null persistent pointer. */
    explicit operator bool() const { return off_ != kPmNull; }

    /** Read the whole object. */
    T
    get() const
    {
        return device_->loadT<T>(off_);
    }

    /** Offset of member @p member for use with TxRuntime::txStore. */
    template <typename M>
    PmOff
    memberOff(M T::*member) const
    {
        // Standard-layout member offset without instantiating T in PM.
        alignas(T) unsigned char storage[sizeof(T)];
        auto *obj = reinterpret_cast<T *>(storage);
        const auto delta =
            reinterpret_cast<const unsigned char *>(&(obj->*member)) -
            reinterpret_cast<const unsigned char *>(obj);
        return off_ + static_cast<PmOff>(delta);
    }

    /** Pointer to the i-th element when this addresses an array of T. */
    PmemPtr<T>
    operator[](std::size_t i) const
    {
        return PmemPtr<T>(*device_, off_ + i * sizeof(T));
    }

  private:
    PmemDevice *device_;
    PmOff off_;
};

} // namespace specpmt::pmem

#endif // SPECPMT_PMEM_PMEM_PTR_HH
