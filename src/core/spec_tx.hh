/**
 * @file
 * Software SpecPMT (the paper's SpecSPMT): speculatively persistent
 * memory transactions, Sections 3 and 4.
 *
 * Inside a transaction every durable update is performed in place and
 * *speculatively logged* — the new value is appended to a per-thread
 * log with no flush or fence. Commit persists the transaction's log
 * segments with one flush batch and a single sfence; the checksum
 * written into each segment header is the commit flag. Data cache
 * lines are never explicitly persisted (the log doubles as a redo log
 * for committed and an undo log for interrupted transactions); the
 * SpecSPMT-DP variant additionally flushes the data write set at
 * commit to isolate the benefit of eliding data persistence
 * (Section 7.1.2).
 *
 * A background reclaimer (Section 4.2) keeps log memory bounded: it
 * freezes the immutable prefix of every thread's block chain, builds
 * a volatile address->newest-timestamp hash index, copies only fresh
 * entries into compact blocks, splices them in with exactly two
 * fences, and frees the stale blocks.
 */

#ifndef SPECPMT_CORE_SPEC_TX_HH
#define SPECPMT_CORE_SPEC_TX_HH

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <thread>
#include <unordered_map>
#include <vector>

#include "core/splog_format.hh"
#include "forensic/flight_recorder.hh"
#include "obs/trace_context.hh"
#include "txn/tx_runtime.hh"
#include "txn/write_set.hh"

namespace specpmt::core
{

/** Tunables for the SpecSPMT runtime. */
struct SpecTxConfig
{
    /** Also persist the data write set at commit (SpecSPMT-DP). */
    bool dataPersistOnCommit = false;
    /** Log block size in bytes. */
    std::size_t logBlockSize = kLogBlockSize;
    /** Start the background reclamation thread. */
    bool backgroundReclaim = true;
    /**
     * Implicit reclamation trigger: run a cycle when the live log
     * exceeds this many bytes (Section 4.2's tunable threshold).
     */
    std::size_t reclaimThresholdBytes = 1u << 20;
    /** Skip compaction when it would save less than this fraction. */
    double compactionMinSavings = 0.10;
    /**
     * Overwrite a datum's existing in-transaction log entry instead
     * of appending a new one (Section 4's "only the last update needs
     * a record"). Disabled only by the ablation benchmark.
     */
    bool dedupEntries = true;
    /**
     * Epoch group commit: txCommitRelaxed() defers the commit's flush
     * batch and fence into a runtime-wide epoch that sealEpoch()
     * persists with one shared fence. DRAM keeps serving the latest
     * view; the persistent image advances one sealed epoch at a time,
     * and recovery replays only transactions covered by the durable
     * epoch frontier. txCommit() keeps its ack-implies-durable
     * contract by sealing the epoch it joins before returning.
     */
    bool groupCommit = false;
};

/** Speculative-logging transaction runtime (SpecSPMT / SpecSPMT-DP). */
class SpecTx : public txn::TxRuntime
{
  public:
    SpecTx(pmem::PmemPool &pool, unsigned num_threads,
           const SpecTxConfig &config = {});
    ~SpecTx() override;

    const char *
    name() const override
    {
        return config_.dataPersistOnCommit ? "spec-spmt-dp" : "spec-spmt";
    }

    void txBegin(ThreadId tid) override;
    void txStore(ThreadId tid, PmOff off, const void *src,
                 std::size_t size) override;
    void txCommit(ThreadId tid) override;

    /** @name Epoch group commit (Section: DESIGN §12) */
    /// @{
    bool
    groupCommitSupported() const override
    {
        return config_.groupCommit;
    }
    std::uint64_t txCommitRelaxed(ThreadId tid) override;
    std::uint64_t sealEpoch() override;
    std::uint64_t
    lastSealedEpoch() const override
    {
        return epochLastSealed_.load(std::memory_order_acquire);
    }
    /// @}

    /**
     * Abort the open transaction during normal execution
     * (Section 5.3.2): restore the captured pre-images and drop the
     * staged log segments. Runs with media faults suppressed so the
     * rollback that recovers from a MediaError cannot itself be
     * interrupted by one.
     */
    void txAbort(ThreadId tid) override;

    /** Segments quarantined by this incarnation's recovery walks. */
    std::uint64_t
    quarantinedSegments() const override
    {
        return quarantinedSegments_;
    }

    /**
     * Post-crash recovery (Section 3.1): discard records of
     * uncommitted transactions, replay all fresh records in global
     * timestamp order, then re-initialize the log areas.
     */
    void recover() override;

    /** Drain background work, persist all data, stop the reclaimer. */
    void shutdown() override;

    /**
     * Adopt external durable data (Section 4.3.2): create a committed
     * snapshot record of [off, off+size) so later transactions on it
     * are revocable even though no prior transaction logged it.
     */
    void adoptExternal(ThreadId tid, PmOff off, std::size_t size);

    /**
     * Switch away from speculative logging (Section 4.3.1): persist
     * all durable data, then truncate the logs; afterwards another
     * crash-consistency mechanism may manage this pool. No transaction
     * may be running.
     */
    void switchMechanism();

    /** Run one synchronous reclamation/compaction cycle (all threads). */
    void reclaimNow();

    /** Bytes currently held by log blocks across all threads. */
    std::size_t logBytesInUse() const;

    /** High-water mark of logBytesInUse(). */
    std::size_t peakLogBytes() const { return peakLogBytes_.load(); }

    /** Number of completed reclamation cycles. */
    std::uint64_t reclaimCycles() const { return reclaimCycles_.load(); }

  private:
    /** An in-progress (uncommitted) segment of the open transaction. */
    struct OpenSeg
    {
        PmOff pos;          ///< SegHead location
        std::size_t bytes;  ///< segment size so far (incl. header)
        std::uint32_t numEntries;
    };

    struct ThreadLog
    {
        mutable std::mutex mutex; ///< guards blocks/tail vs reclaimer
        std::vector<PmOff> blocks; ///< chain, oldest -> newest
        std::size_t tailPos = 0;   ///< append offset in blocks.back()
        bool inTx = false;
        std::vector<OpenSeg> openSegs;
        /** (off,size) -> logged value position, for last-update dedup. */
        std::unordered_map<std::uint64_t, PmOff> entryIndex;
        /** Flush set accumulated since the last commit fence. */
        std::vector<std::pair<PmOff, std::size_t>> pendingFlush;
        /** Pre-images for fast abort (volatile, Section 5.3.2). */
        std::vector<std::pair<PmOff, std::vector<std::uint8_t>>> preImages;
        txn::WriteSet captured;  ///< bytes with a pre-image this tx
        txn::WriteSet writeSet;  ///< data bytes updated this tx (DP)
        /** Index of the first block containing an open segment. */
        std::size_t firstOpenBlock = 0;
        /** Set by txAbort: the rewound tail bytes may sit on a
         * permanently failing media line, so the next transaction
         * must open in a fresh block instead of re-serving them. */
        bool retireTailOnBegin = false;
        /** Trace-span start for the open transaction (0 = tracing off). */
        std::uint64_t traceStartNs = 0;
        /** Thread PM-cost snapshot at txBegin; commit publishes the
         * delta into the specpmt_pm_* accounting metrics. */
        obs::PmCost costAtBegin;
    };

    ThreadLog &threadLog(ThreadId tid) { return *logs_.at(tid); }

    /** Allocate, zero and link a fresh tail block (>= min_bytes room). */
    void attachBlock(ThreadLog &log, std::size_t min_bytes);

    /** Open a new segment at the tail (attaching a block if needed). */
    void openSegment(ThreadLog &log);

    /** Append one entry (assumes a segment is open). */
    void appendEntry(ThreadLog &log, PmOff off, const void *src,
                     std::size_t size);

    /** Write zero poison at the tail so walkers stop there. */
    void poisonTail(ThreadLog &log);

    void initFreshLog(unsigned tid);

    /** One reclamation cycle; returns bytes freed. */
    std::size_t reclaimCycle();

    void reclaimerMain();

    void noteLogBytes(std::ptrdiff_t delta);

    /** A flush range deferred into the open epoch. */
    struct EpochRange
    {
        PmOff off;
        std::size_t size;
        pmem::TrafficClass cls;
    };

    /** Checksum-seal the open segments (stores only) + tail poison. */
    void sealSegments(ThreadLog &log, TxTimestamp ts);

    /**
     * Group-commit commit path: seal the open transaction's segments
     * and hand the flush set to the open epoch instead of fencing.
     * Returns the epoch ticket joined (0 for a read-only commit).
     */
    std::uint64_t commitIntoEpoch(ThreadId tid, bool &readonly);

    /** Create (or reuse) the persistent frontier record; epoch mode. */
    void initEpochFrontier(bool adopt_existing);

    /** Durably note the window of the epoch being sealed. */
    void storeEpochFrontier(TxTimestamp first, TxTimestamp last);

    SpecTxConfig config_;
    /** Disabled unless the pool carries a flight-recorder ring. */
    forensic::FlightRecorder flight_;
    std::vector<std::unique_ptr<ThreadLog>> logs_;
    /** Set when the constructor found a pre-existing (crashed) pool. */
    bool needsRecovery_ = false;
    /** Media-corrupted segments quarantined by recover(). */
    std::uint64_t quarantinedSegments_ = 0;

    std::atomic<std::size_t> logBytes_{0};
    std::atomic<std::size_t> peakLogBytes_{0};
    std::atomic<std::uint64_t> reclaimCycles_{0};

    std::mutex reclaimMutex_;
    std::condition_variable reclaimCv_;
    bool reclaimRequested_ = false;
    bool stopReclaimer_ = false;
    std::thread reclaimer_;

    /**
     * Epoch state (group-commit mode only). epochMutex_ makes
     * {timestamp allocation, seal stores, flush-range registration}
     * one atomic step, which is what keeps allocated timestamps dense
     * and epoch membership timestamp-contiguous — the invariants the
     * recovery frontier rule rests on. epochSealMutex_ serializes
     * sealers and is always taken first.
     */
    std::mutex epochMutex_;
    std::mutex epochSealMutex_;
    std::vector<EpochRange> epochPending_;
    std::uint64_t epochPendingTxs_ = 0;
    TxTimestamp epochFirstTs_ = 0;
    TxTimestamp epochLastTs_ = 0;
    std::uint64_t epochOpenTicket_ = 1;
    /** Trace ids of sampled members of the open epoch (guarded by
     * epochMutex_, capped at kEpochTraceMembers); the sealer emits one
     * epoch_seal span per id so a sampled request's waterfall shows
     * the shared fence it rode. */
    static constexpr std::size_t kEpochTraceMembers = 64;
    std::vector<std::uint64_t> epochTraceIds_;
    std::atomic<std::uint64_t> epochLastSealed_{0};
    /** Device offset of the persistent frontier record (epoch mode). */
    PmOff epochFrontierOff_ = kPmNull;
};

} // namespace specpmt::core

#endif // SPECPMT_CORE_SPEC_TX_HH
