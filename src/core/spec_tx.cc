#include "core/spec_tx.hh"

#include <algorithm>
#include <chrono>
#include <cstddef>
#include <cstring>

#include "common/hash.hh"
#include "common/logging.hh"
#include "core/splog_walk.hh"
#include "obs/metrics.hh"
#include "obs/trace.hh"
#include "obs/trace_context.hh"

namespace specpmt::core
{

namespace
{

/** Dedup key for a logged (address, size) pair. */
std::uint64_t
entryKey(PmOff off, std::size_t size)
{
    SPECPMT_ASSERT(off < (1ull << 32));
    SPECPMT_ASSERT(size < (1ull << 32));
    return (off << 32) | static_cast<std::uint64_t>(size);
}

/** SpecSPMT runtime counters, registered once per process. */
struct SpecTxMetrics
{
    obs::Counter &begins;
    obs::Counter &commits;
    obs::Counter &readonlyCommits;
    obs::Counter &aborts;
    obs::Counter &dedupHits;
    obs::Counter &segmentsSealed;
    obs::Counter &logBytesWritten;
    obs::Counter &reclaimCycles;
    obs::Counter &reclaimBytesFreed;
    obs::Counter &recoveries;
    obs::Counter &recoveryReplayedTxs;
    obs::Gauge &logBytesInUse;
    obs::Counter &epochSeals;
    obs::Counter &epochRelaxedCommits;
    obs::Counter &epochTxsSealed;
    obs::Counter &epochDroppedTxs;
    obs::Gauge &epochPendingTxs;
    obs::Gauge &epochLastSealed;
    obs::Histogram &epochTxsPerSeal;
    obs::Counter &quarantinedSegments;

    static SpecTxMetrics &
    get()
    {
        auto &reg = obs::Registry::global();
        static SpecTxMetrics m{
            reg.counter("specpmt_spec_tx_begins_total",
                        "SpecSPMT transactions started"),
            reg.counter("specpmt_spec_tx_commits_total",
                        "SpecSPMT transactions committed (update txs)"),
            reg.counter("specpmt_spec_tx_readonly_commits_total",
                        "SpecSPMT read-only commits (no fence needed)"),
            reg.counter("specpmt_spec_tx_aborts_total",
                        "SpecSPMT transactions aborted"),
            reg.counter("specpmt_spec_tx_dedup_hits_total",
                        "txStores absorbed by an existing log entry"),
            reg.counter("specpmt_spec_tx_segments_sealed_total",
                        "log segments sealed at commit"),
            reg.counter("specpmt_spec_tx_log_bytes_written_total",
                        "bytes appended to speculative logs"),
            reg.counter("specpmt_reclaim_cycles_total",
                        "log reclamation cycles completed"),
            reg.counter("specpmt_reclaim_bytes_freed_total",
                        "log bytes freed by reclamation"),
            reg.counter("specpmt_recoveries_total",
                        "SpecSPMT post-crash recoveries"),
            reg.counter("specpmt_recovery_replayed_txs_total",
                        "committed transactions replayed in recovery"),
            reg.gauge("specpmt_spec_tx_log_bytes_in_use",
                      "live speculative-log bytes across all threads"),
            reg.counter("specpmt_epoch_seals_total",
                        "epoch group-commit fences (one per sealed "
                        "epoch)"),
            reg.counter("specpmt_epoch_relaxed_commits_total",
                        "transactions committed relaxed into an epoch"),
            reg.counter("specpmt_epoch_txs_sealed_total",
                        "transactions made durable by epoch seals"),
            reg.counter("specpmt_epoch_dropped_txs_total",
                        "committed-in-DRAM transactions dropped by "
                        "recovery as beyond the durable epoch frontier"),
            reg.gauge("specpmt_epoch_pending_txs",
                      "relaxed commits awaiting the next epoch seal"),
            reg.gauge("specpmt_epoch_last_sealed",
                      "highest sealed epoch ticket"),
            reg.histogram("specpmt_epoch_txs_per_seal",
                          "epoch size in transactions at seal time"),
            reg.counter("specpmt_pm_media_quarantined_segments_total",
                        "CRC-failing log segments quarantined by "
                        "recovery walks instead of stopping them"),
        };
        return m;
    }
};

/**
 * PM cost accounting (the specpmt_pm_* family): how much persistence
 * work commits buy per byte of user data. Commits charge their
 * thread-local PmCost delta into the cumulative counters; the ratio
 * gauges are recomputed on each charge so a scrape always sees
 * write-amp / flush-per-tx figures consistent with the counters it
 * reads alongside them.
 */
struct PmMetrics
{
    obs::Counter &txs;
    obs::Counter &userBytes;
    obs::Counter &logBytes;
    obs::Counter &dedupHits;
    obs::Counter &flushes;
    obs::Counter &flushBytes;
    obs::Counter &fences;
    obs::FloatGauge &writeAmp;
    obs::FloatGauge &flushesPerTx;
    obs::FloatGauge &fencesPerTx;
    obs::Gauge &logBytesPeak;
    obs::Gauge &reclaimDebt;

    static PmMetrics &
    get()
    {
        auto &reg = obs::Registry::global();
        static PmMetrics m{
            reg.counter("specpmt_pm_txs_total",
                        "update transactions charged to the PM cost "
                        "accounting counters"),
            reg.counter("specpmt_pm_user_bytes_total",
                        "bytes transactions asked to persist (txStore "
                        "payloads)"),
            reg.counter("specpmt_pm_log_bytes_total",
                        "log bytes those transactions appended "
                        "(entries + headers)"),
            reg.counter("specpmt_pm_dedup_hits_total",
                        "txStores absorbed in place by the dedup "
                        "index (no log append)"),
            reg.counter("specpmt_pm_flushes_total",
                        "cache-line flushes charged to transactions "
                        "and their epoch seals"),
            reg.counter("specpmt_pm_flush_bytes_total",
                        "bytes covered by those flushes"),
            reg.counter("specpmt_pm_fences_total",
                        "store fences charged to transactions and "
                        "their epoch seals"),
            reg.floatGauge("specpmt_pm_write_amp",
                           "cumulative log bytes / user bytes (log "
                           "write amplification)"),
            reg.floatGauge("specpmt_pm_flushes_per_tx",
                           "cumulative flushes / committed update "
                           "transactions"),
            reg.floatGauge("specpmt_pm_fences_per_tx",
                           "cumulative fences / committed update "
                           "transactions"),
            reg.gauge("specpmt_pm_log_bytes_peak",
                      "high watermark of live speculative-log bytes"),
            reg.gauge("specpmt_pm_reclaim_debt_bytes",
                      "live log bytes beyond the reclaim threshold "
                      "(0 when under it)"),
        };
        return m;
    }

    /** Add a cost delta to the counters; ratios follow. */
    void
    charge(const obs::PmCost &d)
    {
        if (d.userBytes != 0)
            userBytes.add(d.userBytes);
        if (d.logBytes != 0)
            logBytes.add(d.logBytes);
        if (d.dedupHits != 0)
            dedupHits.add(d.dedupHits);
        if (d.flushes != 0)
            flushes.add(d.flushes);
        if (d.flushBytes != 0)
            flushBytes.add(d.flushBytes);
        if (d.fences != 0)
            fences.add(d.fences);
        const double ub = static_cast<double>(userBytes.value());
        if (ub > 0)
            writeAmp.set(static_cast<double>(logBytes.value()) / ub);
        const double n = static_cast<double>(txs.value());
        if (n > 0) {
            flushesPerTx.set(static_cast<double>(flushes.value()) / n);
            fencesPerTx.set(static_cast<double>(fences.value()) / n);
        }
    }

    /** One committed update transaction's delta. */
    void
    chargeCommit(const obs::PmCost &d)
    {
        txs.add();
        charge(d);
    }
};

} // namespace

SpecTx::SpecTx(pmem::PmemPool &pool, unsigned num_threads,
               const SpecTxConfig &config)
    : TxRuntime(pool, num_threads), config_(config),
      flight_(forensic::FlightRecorder::attach(pool))
{
    logs_.reserve(num_threads);
    for (unsigned tid = 0; tid < num_threads; ++tid)
        logs_.push_back(std::make_unique<ThreadLog>());

    if (pool_.getRoot(txn::logHeadSlot(0)) != kPmNull) {
        // A previous incarnation's logs survive in this pool; the
        // caller must run recover() before the first transaction.
        needsRecovery_ = true;
    } else {
        for (unsigned tid = 0; tid < num_threads; ++tid)
            initFreshLog(tid);
        if (config_.groupCommit)
            initEpochFrontier(/*adopt_existing=*/false);
    }

    if (config_.backgroundReclaim)
        reclaimer_ = std::thread([this] { reclaimerMain(); });
}

SpecTx::~SpecTx()
{
    if (reclaimer_.joinable()) {
        {
            std::lock_guard<std::mutex> guard(reclaimMutex_);
            stopReclaimer_ = true;
        }
        reclaimCv_.notify_all();
        reclaimer_.join();
    }
}

void
SpecTx::noteLogBytes(std::ptrdiff_t delta)
{
    const std::size_t now = logBytes_.fetch_add(delta) + delta;
    std::size_t peak = peakLogBytes_.load();
    while (now > peak && !peakLogBytes_.compare_exchange_weak(peak, now)) {
    }
    SpecTxMetrics::get().logBytesInUse.set(
        static_cast<std::int64_t>(now));
    auto &pm = PmMetrics::get();
    pm.logBytesPeak.set(
        static_cast<std::int64_t>(peakLogBytes_.load()));
    pm.reclaimDebt.set(static_cast<std::int64_t>(
        now > config_.reclaimThresholdBytes
            ? now - config_.reclaimThresholdBytes
            : 0));
}

void
SpecTx::initFreshLog(unsigned tid)
{
    auto &log = *logs_[tid];
    std::lock_guard<std::mutex> guard(log.mutex);
    log.blocks.clear();

    const PmOff block =
        pool_.allocAligned(config_.logBlockSize, kCacheLineSize);
    BlockHeader header{kPmNull, kPmNull, pool_.allocationSize(block), 0};
    dev_.storeT(block, header);
    // Poison the first record slot so a walker stops immediately.
    dev_.storeT<std::uint64_t>(block + sizeof(BlockHeader), 0);
    dev_.clwbRange(block, sizeof(BlockHeader) + 8,
                   pmem::TrafficClass::Log);
    dev_.sfence();
    pool_.setRoot(txn::logHeadSlot(tid), block);

    log.blocks.push_back(block);
    log.tailPos = sizeof(BlockHeader);
    log.firstOpenBlock = 0;
    log.inTx = false;
    log.openSegs.clear();
    log.entryIndex.clear();
    log.pendingFlush.clear();
    noteLogBytes(static_cast<std::ptrdiff_t>(pool_.allocationSize(block)));
}

void
SpecTx::attachBlock(ThreadLog &log, std::size_t min_bytes)
{
    std::size_t size = config_.logBlockSize;
    const std::size_t need = sizeof(BlockHeader) + min_bytes + 8;
    if (need > size)
        size = (need + kCacheLineSize - 1) & ~(kCacheLineSize - 1);

    const PmOff block = pool_.allocAligned(size, kCacheLineSize);
    const PmOff old_tail = log.blocks.back();
    size = pool_.allocationSize(block);

    BlockHeader header{kPmNull, old_tail, size, 0};
    dev_.storeT(block, header);
    dev_.storeT<std::uint64_t>(block + sizeof(BlockHeader), 0);
    // Chain it: the pointer persists with the next commit fence.
    dev_.storeT<PmOff>(old_tail + offsetof(BlockHeader, next), block);

    log.pendingFlush.emplace_back(block, sizeof(BlockHeader) + 8);
    log.pendingFlush.emplace_back(old_tail + offsetof(BlockHeader, next),
                                  sizeof(PmOff));

    {
        std::lock_guard<std::mutex> guard(log.mutex);
        log.blocks.push_back(block);
        log.tailPos = sizeof(BlockHeader);
    }
    noteLogBytes(static_cast<std::ptrdiff_t>(size));
}

void
SpecTx::openSegment(ThreadLog &log)
{
    if (log.retireTailOnBegin) {
        // The previous transaction aborted mid-append. If the abort
        // was a media fault (e.g. a write-EIO line under the tail),
        // re-serving the rewound bytes would hit the same line on
        // every retry forever; burn the rest of the block and carry
        // on in a fresh one. A genuinely dead region thus costs pool
        // space — degrading to read-only via PoolExhausted — instead
        // of wedging the shard in an abort loop.
        attachBlock(log, sizeof(SegHead));
        log.retireTailOnBegin = false;
    }
    const PmOff base = log.blocks.back();
    const auto cap = static_cast<std::size_t>(
        dev_.loadT<std::uint64_t>(base + offsetof(BlockHeader, capacity)));
    if (log.tailPos + sizeof(SegHead) + sizeof(std::uint64_t) > cap)
        attachBlock(log, sizeof(SegHead));
    log.openSegs.push_back(
        {log.blocks.back() + log.tailPos, sizeof(SegHead), 0});
    log.tailPos += sizeof(SegHead);
}

void
SpecTx::appendEntry(ThreadLog &log, PmOff off, const void *src,
                    std::size_t size)
{
    const std::size_t bytes = entryBytes(size);
    const PmOff base = log.blocks.back();
    const auto cap = static_cast<std::size_t>(
        dev_.loadT<std::uint64_t>(base + offsetof(BlockHeader, capacity)));

    if (log.tailPos + bytes + sizeof(std::uint64_t) > cap) {
        // The entry does not fit: start a fresh segment in a fresh
        // block; the transaction now spans multiple segments.
        attachBlock(log, sizeof(SegHead) + bytes);
        openSegment(log);
    }

    const PmOff pos = log.blocks.back() + log.tailPos;
    EntryHead head{off, static_cast<std::uint32_t>(size), 0};
    dev_.storeT(pos, head);
    dev_.store(pos + sizeof(EntryHead), src, size);

    auto &seg = log.openSegs.back();
    seg.bytes += bytes;
    ++seg.numEntries;
    log.entryIndex[entryKey(off, size)] = pos + sizeof(EntryHead);
    log.tailPos += bytes;
    SpecTxMetrics::get().logBytesWritten.add(bytes);
    obs::traceContext().cost.logBytes += bytes;
}

void
SpecTx::poisonTail(ThreadLog &log)
{
    const PmOff base = log.blocks.back();
    const auto cap = static_cast<std::size_t>(
        dev_.loadT<std::uint64_t>(base + offsetof(BlockHeader, capacity)));
    if (log.tailPos + sizeof(std::uint64_t) <= cap) {
        dev_.storeT<std::uint64_t>(base + log.tailPos, 0);
        log.pendingFlush.emplace_back(base + log.tailPos,
                                      sizeof(std::uint64_t));
    }
}

void
SpecTx::txBegin(ThreadId tid)
{
    SPECPMT_ASSERT(!needsRecovery_);
    auto &log = threadLog(tid);
    SPECPMT_ASSERT(!log.inTx);
    log.inTx = true;
    log.openSegs.clear();
    log.entryIndex.clear();
    log.preImages.clear();
    log.captured.clear();
    log.writeSet.clear();
    SpecTxMetrics::get().begins.add();
    flight_.record(forensic::EventType::TxBegin, tid);
    log.costAtBegin = obs::traceContext().cost;
    log.traceStartNs = SPECPMT_TRACE_BEGIN();
    openSegment(log);
    {
        std::lock_guard<std::mutex> guard(log.mutex);
        log.firstOpenBlock = log.blocks.size() - 1;
    }
}

void
SpecTx::txStore(ThreadId tid, PmOff off, const void *src, std::size_t size)
{
    auto &log = threadLog(tid);
    SPECPMT_ASSERT(log.inTx);
    SPECPMT_ASSERT(size > 0);

    // Capture pre-images (volatile) for fast abort.
    for (const auto &[gap_off, gap_size] : log.captured.uncovered(off,
                                                                  size)) {
        std::vector<std::uint8_t> old_value(gap_size);
        dev_.load(gap_off, old_value.data(), gap_size);
        log.preImages.emplace_back(gap_off, std::move(old_value));
        log.captured.add(gap_off, gap_size);
    }

    // splog: record the *new* value; a repeated update of the same
    // datum overwrites its existing log entry in place so only the
    // last update survives (Section 4).
    const auto it = config_.dedupEntries
        ? log.entryIndex.find(entryKey(off, size))
        : log.entryIndex.end();
    obs::traceContext().cost.userBytes += size;
    if (it != log.entryIndex.end()) {
        dev_.store(it->second, src, size);
        SpecTxMetrics::get().dedupHits.add();
        ++obs::traceContext().cost.dedupHits;
    } else {
        appendEntry(log, off, src, size);
    }

    // In-place durable update — no flush, no fence.
    dev_.store(off, src, size);
    if (config_.dataPersistOnCommit)
        log.writeSet.add(off, size);
}

void
SpecTx::sealSegments(ThreadLog &log, TxTimestamp ts)
{
    SpecTxMetrics::get().segmentsSealed.add(log.openSegs.size());
    for (std::size_t i = 0; i < log.openSegs.size(); ++i) {
        const auto &seg = log.openSegs[i];
        SegHead head;
        head.sizeBytes = static_cast<std::uint32_t>(seg.bytes);
        head.timestamp = ts;
        // The final seal attests to the whole transaction's shape so
        // recovery can detect a missing intermediate segment.
        head.flags = (i + 1 == log.openSegs.size())
                         ? segFlagsWithCount(
                               kSegFinal, static_cast<std::uint32_t>(
                                              log.openSegs.size()))
                         : 0;
        head.numEntries = seg.numEntries;
        head.crc = segmentCrc(dev_, seg.pos, head);
        dev_.storeT(seg.pos, head);
        log.pendingFlush.emplace_back(seg.pos, seg.bytes);
    }
    poisonTail(log);
}

void
SpecTx::txCommit(ThreadId tid)
{
    if (config_.groupCommit) {
        // Strict commit in epoch mode: join the epoch, then seal it
        // before returning. One fence covers this transaction plus
        // every earlier relaxed commit, so the ack-implies-durable
        // contract holds and the epoch's timestamps stay dense.
        bool readonly = false;
        commitIntoEpoch(tid, readonly);
        if (!readonly)
            sealEpoch();
        return;
    }

    auto &log = threadLog(tid);
    SPECPMT_ASSERT(log.inTx);

    // Read-only transaction: nothing to persist; rewind the header
    // space reserved at txBegin.
    if (log.openSegs.size() == 1 && log.openSegs[0].numEntries == 0) {
        log.inTx = false;
        log.tailPos -= sizeof(SegHead);
        log.openSegs.clear();
        std::lock_guard<std::mutex> guard(log.mutex);
        log.firstOpenBlock = log.blocks.size() - 1;
        SpecTxMetrics::get().readonlyCommits.add();
        SPECPMT_TRACE_END("tx_readonly", "tx", log.traceStartNs);
        return;
    }

    const TxTimestamp ts = nextTimestamp();
    sealSegments(log, ts);

    // One flush batch + one fence persists the whole transaction:
    // the segment checksums are the commit flag (Section 4.1).
    {
        const std::uint64_t flushStartNs = SPECPMT_TRACE_BEGIN();
        if (config_.dataPersistOnCommit) {
            log.writeSet.forEachLine([&](std::uint64_t line) {
                dev_.clwb(line * kCacheLineSize,
                          pmem::TrafficClass::Data);
            });
        }
        for (const auto &[off, size] : log.pendingFlush)
            dev_.clwbRange(off, size, pmem::TrafficClass::Log);
        // Rides the commit fence below, durable iff the seals are.
        flight_.record(forensic::EventType::TxCommit, tid, ts,
                       log.openSegs.size());
        dev_.sfence();
        if (flushStartNs != 0 && obs::Tracer::global().enabled()) {
            const auto &tctx = obs::traceContext();
            obs::Tracer::global().record(
                "flush_batch", "flush", flushStartNs,
                obs::Tracer::now(),
                tctx.sampled ? tctx.traceId : 0);
        }
    }

    // Commit point. Only past the fence is the transaction
    // irrevocable; a media fault thrown from the seal/flush stores
    // above leaves inTx set, so the caller can still txAbort() —
    // pre-images restored, tail rewound and re-poisoned.
    log.inTx = false;

    log.pendingFlush.clear();
    log.openSegs.clear();
    log.entryIndex.clear();
    log.preImages.clear();
    log.captured.clear();
    log.writeSet.clear();
    {
        std::lock_guard<std::mutex> guard(log.mutex);
        log.firstOpenBlock = log.blocks.size() - 1;
    }

    SpecTxMetrics::get().commits.add();
    {
        auto &cost = obs::traceContext().cost;
        cost.logBytesPeak = peakLogBytes_.load();
        const std::size_t live = logBytes_.load();
        cost.reclaimDebt = live > config_.reclaimThresholdBytes
                               ? live - config_.reclaimThresholdBytes
                               : 0;
        PmMetrics::get().chargeCommit(
            obs::PmCost::delta(log.costAtBegin, cost));
    }
    SPECPMT_TRACE_END("tx", "tx", log.traceStartNs);

    // Implicit reclamation trigger (Section 4.2).
    if (logBytes_.load() > config_.reclaimThresholdBytes &&
        reclaimer_.joinable()) {
        {
            std::lock_guard<std::mutex> guard(reclaimMutex_);
            reclaimRequested_ = true;
        }
        reclaimCv_.notify_one();
    }
}

std::uint64_t
SpecTx::commitIntoEpoch(ThreadId tid, bool &readonly)
{
    auto &log = threadLog(tid);
    SPECPMT_ASSERT(log.inTx);
    log.inTx = false;

    if (log.openSegs.size() == 1 && log.openSegs[0].numEntries == 0) {
        readonly = true;
        log.tailPos -= sizeof(SegHead);
        log.openSegs.clear();
        std::lock_guard<std::mutex> guard(log.mutex);
        log.firstOpenBlock = log.blocks.size() - 1;
        SpecTxMetrics::get().readonlyCommits.add();
        SPECPMT_TRACE_END("tx_readonly", "tx", log.traceStartNs);
        return 0;
    }
    readonly = false;

    std::uint64_t ticket = 0;
    std::size_t sealed_segs = 0;
    {
        // Timestamp allocation, seal stores, and flush-range
        // registration form one atomic step against concurrent
        // commits and sealers: this is what keeps epoch membership
        // timestamp-contiguous (see the header comment on
        // epochMutex_).
        std::lock_guard<std::mutex> guard(epochMutex_);
        const TxTimestamp ts = nextTimestamp();
        sealed_segs = log.openSegs.size();
        sealSegments(log, ts);
        if (config_.dataPersistOnCommit) {
            log.writeSet.forEachLine([&](std::uint64_t line) {
                epochPending_.push_back({line * kCacheLineSize,
                                         kCacheLineSize,
                                         pmem::TrafficClass::Data});
            });
        }
        for (const auto &[off, size] : log.pendingFlush)
            epochPending_.push_back(
                {off, size, pmem::TrafficClass::Log});
        if (epochPendingTxs_ == 0)
            epochFirstTs_ = ts;
        epochLastTs_ = ts;
        ++epochPendingTxs_;
        ticket = epochOpenTicket_;
        SpecTxMetrics::get().epochPendingTxs.set(
            static_cast<std::int64_t>(epochPendingTxs_));
        // Rides the epoch fence, durable iff the seals are.
        flight_.record(forensic::EventType::TxCommit, tid, ts,
                       sealed_segs);
        const auto &tctx = obs::traceContext();
        if (tctx.sampled && tctx.traceId != 0 &&
            epochTraceIds_.size() < kEpochTraceMembers)
            epochTraceIds_.push_back(tctx.traceId);
    }

    log.pendingFlush.clear();
    log.openSegs.clear();
    log.entryIndex.clear();
    log.preImages.clear();
    log.captured.clear();
    log.writeSet.clear();
    {
        std::lock_guard<std::mutex> guard(log.mutex);
        log.firstOpenBlock = log.blocks.size() - 1;
    }

    SpecTxMetrics::get().commits.add();
    {
        auto &cost = obs::traceContext().cost;
        cost.logBytesPeak = peakLogBytes_.load();
        const std::size_t live = logBytes_.load();
        cost.reclaimDebt = live > config_.reclaimThresholdBytes
                               ? live - config_.reclaimThresholdBytes
                               : 0;
        PmMetrics::get().chargeCommit(
            obs::PmCost::delta(log.costAtBegin, cost));
    }
    SPECPMT_TRACE_END("tx", "tx", log.traceStartNs);

    if (logBytes_.load() > config_.reclaimThresholdBytes &&
        reclaimer_.joinable()) {
        {
            std::lock_guard<std::mutex> guard(reclaimMutex_);
            reclaimRequested_ = true;
        }
        reclaimCv_.notify_one();
    }
    return ticket;
}

std::uint64_t
SpecTx::txCommitRelaxed(ThreadId tid)
{
    if (!config_.groupCommit) {
        txCommit(tid);
        return 0;
    }
    bool readonly = false;
    const std::uint64_t ticket = commitIntoEpoch(tid, readonly);
    if (readonly)
        return 0;
    SpecTxMetrics::get().epochRelaxedCommits.add();
    return ticket;
}

std::uint64_t
SpecTx::sealEpoch()
{
    if (!config_.groupCommit)
        return 0;
    std::lock_guard<std::mutex> seal_guard(epochSealMutex_);
    std::vector<EpochRange> ranges;
    std::vector<std::uint64_t> members;
    std::uint64_t ticket = 0;
    std::uint64_t txs = 0;
    TxTimestamp first = 0;
    TxTimestamp last = 0;
    {
        std::lock_guard<std::mutex> guard(epochMutex_);
        if (epochPendingTxs_ == 0)
            return epochLastSealed_.load(std::memory_order_relaxed);
        ranges.swap(epochPending_);
        members.swap(epochTraceIds_);
        txs = epochPendingTxs_;
        epochPendingTxs_ = 0;
        first = epochFirstTs_;
        last = epochLastTs_;
        epochFirstTs_ = epochLastTs_ = 0;
        ticket = epochOpenTicket_++;
        SpecTxMetrics::get().epochPendingTxs.set(0);
    }

    const obs::PmCost sealCostBefore = obs::traceContext().cost;
    const std::uint64_t sealStartNs = SPECPMT_TRACE_BEGIN();
    {
        // The frontier advance rides the same flush batch as the
        // member seals. If the fence below never completes, recovery
        // treats any gap inside the announced window as proof of
        // that, and replays only the window's dense prefix — all of
        // which was unacked. Once the fence completes, frontier and
        // seals are durable together.
        storeEpochFrontier(first, last);
        for (const auto &range : ranges)
            dev_.clwbRange(range.off, range.size, range.cls);
        dev_.sfence();
    }
    if (sealStartNs != 0 && obs::Tracer::global().enabled()) {
        const std::uint64_t sealEndNs = obs::Tracer::now();
        auto &tracer = obs::Tracer::global();
        tracer.record("epoch_seal", "flush", sealStartNs, sealEndNs);
        // One linked span per sampled member, so each request's
        // waterfall shows the shared fence it rode and how many
        // transactions amortized it.
        const obs::TraceArg sealArgs[] = {{"txs", txs}};
        for (const std::uint64_t member : members)
            tracer.record("epoch_seal", "flush", sealStartNs,
                          sealEndNs, member, sealArgs, 1);
    }
    // The shared fence's flush work is charged without a tx of its
    // own: flushes_per_tx amortizes it over the member commits.
    PmMetrics::get().charge(obs::PmCost::delta(
        sealCostBefore, obs::traceContext().cost));
    epochLastSealed_.store(ticket, std::memory_order_release);

    auto &m = SpecTxMetrics::get();
    m.epochSeals.add();
    m.epochTxsSealed.add(txs);
    m.epochTxsPerSeal.record(txs);
    m.epochLastSealed.set(static_cast<std::int64_t>(ticket));
    return ticket;
}

void
SpecTx::initEpochFrontier(bool adopt_existing)
{
    const PmOff existing = pool_.getRoot(txn::kEpochFrontierSlot);
    if (adopt_existing && existing != kPmNull) {
        pool_.adopt(existing, kCacheLineSize);
        epochFrontierOff_ = existing;
        return;
    }
    epochFrontierOff_ =
        pool_.allocAligned(kCacheLineSize, kCacheLineSize);
    const TxTimestamp base = currentTimestamp();
    storeEpochFrontier(base + 1, base); // empty window: replay all
    // setRoot is durable (clwb + sfence), which also fences the
    // record's initial contents.
    pool_.setRoot(txn::kEpochFrontierSlot, epochFrontierOff_);
}

void
SpecTx::storeEpochFrontier(TxTimestamp first, TxTimestamp last)
{
    SPECPMT_ASSERT(epochFrontierOff_ != kPmNull);
    EpochFrontier frontier{kEpochFrontierMagic, first, last, 0, 0};
    frontier.crc = epochFrontierCrc(frontier);
    dev_.storeT(epochFrontierOff_, frontier);
    dev_.clwbRange(epochFrontierOff_, sizeof(EpochFrontier),
                   pmem::TrafficClass::Meta);
}

void
SpecTx::txAbort(ThreadId tid)
{
    // The rollback must complete even when the abort is *caused by* a
    // media fault: restoring pre-images and re-poisoning the tail may
    // touch the very lines whose failure is being unwound.
    pmem::MediaFaultSuppress suppress_media_faults;
    auto &log = threadLog(tid);
    SPECPMT_ASSERT(log.inTx);
    log.inTx = false;

    // Restore the captured pre-images, newest first.
    for (auto it = log.preImages.rbegin(); it != log.preImages.rend();
         ++it) {
        dev_.store(it->first, it->second.data(), it->second.size());
    }

    // A transaction that failed before its first segment opened (pool
    // exhaustion inside txBegin) has nothing staged to rewind.
    if (log.openSegs.empty()) {
        log.entryIndex.clear();
        log.preImages.clear();
        log.captured.clear();
        log.writeSet.clear();
        SpecTxMetrics::get().aborts.add();
        flight_.record(forensic::EventType::TxAbort, tid);
        SPECPMT_TRACE_END("tx_abort", "tx", log.traceStartNs);
        return;
    }

    // Rewind the log tail to where this transaction started and drop
    // any blocks attached on its behalf.
    const PmOff rewind_pos = log.openSegs.front().pos;

    std::vector<PmOff> freed;
    {
        std::lock_guard<std::mutex> guard(log.mutex);
        // Find the block containing rewind_pos.
        std::size_t keep = log.blocks.size();
        for (std::size_t i = 0; i < log.blocks.size(); ++i) {
            const PmOff base = log.blocks[i];
            const auto cap = dev_.loadT<std::uint64_t>(
                base + offsetof(BlockHeader, capacity));
            if (rewind_pos >= base && rewind_pos < base + cap) {
                keep = i;
                break;
            }
        }
        SPECPMT_ASSERT(keep < log.blocks.size());
        for (std::size_t i = keep + 1; i < log.blocks.size(); ++i)
            freed.push_back(log.blocks[i]);
        log.blocks.resize(keep + 1);
        log.tailPos = rewind_pos - log.blocks.back();
        log.firstOpenBlock = log.blocks.size() - 1;
    }

    // Unlink and poison; drop pending flushes that point into freed
    // blocks.
    dev_.storeT<PmOff>(log.blocks.back() + offsetof(BlockHeader, next),
                       kPmNull);
    log.pendingFlush.emplace_back(
        log.blocks.back() + offsetof(BlockHeader, next), sizeof(PmOff));
    auto in_freed = [&](PmOff off) {
        for (PmOff base : freed) {
            const std::size_t cap = pool_.allocationSize(base);
            if (off >= base && off < base + cap)
                return true;
        }
        return false;
    };
    std::erase_if(log.pendingFlush, [&](const auto &range) {
        return in_freed(range.first);
    });
    poisonTail(log);

    // The dropped blocks are deliberately NOT returned to the pool:
    // when the abort was caused by a media fault one of them may
    // contain the failing line, and the pool's LIFO free lists would
    // hand it straight back to the next attachBlock — an abort loop
    // on the same bad line. Aborts are exceptional (media faults,
    // pool exhaustion), so the quarantined space is bounded and
    // read-only degradation remains the backstop.
    for (PmOff base : freed)
        noteLogBytes(-static_cast<std::ptrdiff_t>(
            pool_.allocationSize(base)));

    log.openSegs.clear();
    log.entryIndex.clear();
    log.preImages.clear();
    log.captured.clear();
    log.writeSet.clear();
    log.retireTailOnBegin = true;
    SpecTxMetrics::get().aborts.add();
    flight_.record(forensic::EventType::TxAbort, tid);
    SPECPMT_TRACE_END("tx_abort", "tx", log.traceStartNs);
}

void
SpecTx::adoptExternal(ThreadId tid, PmOff off, std::size_t size)
{
    // Snapshot external data in chunks inside one transaction
    // (Section 4.3.2): afterwards every byte has a committed record.
    constexpr std::size_t kChunk = 1024;
    txBegin(tid);
    std::vector<std::uint8_t> buffer(kChunk);
    for (std::size_t done = 0; done < size; done += kChunk) {
        const std::size_t chunk = std::min(kChunk, size - done);
        dev_.load(off + done, buffer.data(), chunk);
        txStore(tid, off + done, buffer.data(), chunk);
    }
    txCommit(tid);
}

void
SpecTx::switchMechanism()
{
    for (const auto &log : logs_)
        SPECPMT_ASSERT(!log->inTx);
    // Persist every durable datum; after this the speculative logs are
    // unnecessary and another mechanism may take over (Section 4.3.1).
    flight_.record(forensic::EventType::ModeSwitch, 0);
    dev_.drainAll();
    logBytes_.store(0);
    for (unsigned tid = 0; tid < numThreads_; ++tid) {
        auto &log = *logs_[tid];
        std::vector<PmOff> old_blocks;
        {
            std::lock_guard<std::mutex> guard(log.mutex);
            old_blocks = log.blocks;
            log.blocks.clear();
            log.tailPos = 0;
            log.firstOpenBlock = 0;
        }
        for (PmOff base : old_blocks)
            pool_.free(base);
        pool_.setRoot(txn::logHeadSlot(tid), kPmNull);
    }
    if (pool_.getRoot(txn::kEpochFrontierSlot) != kPmNull)
        pool_.setRoot(txn::kEpochFrontierSlot, kPmNull);
    // This instance is done; a successor mechanism owns the pool now.
    needsRecovery_ = true;
}

void
SpecTx::shutdown()
{
    sealEpoch();
    if (reclaimer_.joinable()) {
        {
            std::lock_guard<std::mutex> guard(reclaimMutex_);
            stopReclaimer_ = true;
        }
        reclaimCv_.notify_all();
        reclaimer_.join();
    }
    dev_.drainAll();
}

std::size_t
SpecTx::logBytesInUse() const
{
    return logBytes_.load();
}

// ---------------------------------------------------------------------
// Recovery (Section 3.1)
// ---------------------------------------------------------------------

void
SpecTx::recover()
{
    SPECPMT_TRACE_SPAN("spec_recover", "recovery");
    // Recovery reads whatever the media still yields: a poisoned line
    // inside an old record must not wedge the walk — the CRC seals
    // decide what is trustworthy, and quarantining handles the rest.
    pmem::MediaFaultSuppress suppress_media_faults;
    flight_.record(forensic::EventType::RecoveryBegin, 0);
    struct CommittedTx
    {
        TxTimestamp ts;
        std::vector<DecodedEntry> entries;
    };
    std::vector<CommittedTx> txs;

    struct AdoptedChain
    {
        WalkResult walk;
        bool present = false;
        /** End position of the last *committed* transaction: the
         * adoption point. Trailing valid-checksum segments of a torn
         * commit are truncated, not kept — leaving them embedded
         * would let a later compaction mistake them for committed
         * records. */
        PmOff lastCommittedEnd = kPmNull;
        /** (timestamp, end position) of every committed group, in
         * chain order; epoch mode truncates at the last *replayed*
         * group instead of the last committed one. */
        std::vector<std::pair<TxTimestamp, PmOff>> groupEnds;
    };
    std::vector<AdoptedChain> chains(numThreads_);

    // A pool operated in group-commit mode carries an epoch frontier
    // record; its presence on media (not this incarnation's config)
    // selects the replay rule, because the previous incarnation is
    // the one whose commits are being recovered.
    const PmOff frontier_root = pool_.getRoot(txn::kEpochFrontierSlot);
    const bool epoch_media = frontier_root != kPmNull;
    EpochFrontier frontier{};
    if (epoch_media)
        frontier = dev_.loadT<EpochFrontier>(frontier_root);

    for (unsigned tid = 0; tid < numThreads_; ++tid) {
        const PmOff root = pool_.getRoot(txn::logHeadSlot(tid));
        if (root == kPmNull)
            continue;
        chains[tid].present = true;

        // Group consecutive same-timestamp segments into transactions
        // (the shared splog_walk rule): committed only on a valid
        // final seal attesting to the run's exact segment count —
        // anything else is an interrupted commit's debris, undone by
        // not replaying it.
        TxGrouper grouper;
        chains[tid].walk = walkChain(
            dev_, root,
            [&](const DecodedSegment &seg) {
                seedTimestamp(seg.timestamp);
                grouper.feed(seg);
            },
            [&](const QuarantinedSegment &q) {
                grouper.noteQuarantine();
                flight_.record(forensic::EventType::Quarantine, tid, 0,
                               q.pos, q.sizeBytes);
            });
        grouper.finish();
        if (!chains[tid].walk.quarantined.empty()) {
            SpecTxMetrics::get().quarantinedSegments.add(
                chains[tid].walk.quarantined.size());
            quarantinedSegments_ +=
                chains[tid].walk.quarantined.size();
        }
        for (const auto &group : grouper.committed()) {
            CommittedTx tx;
            tx.ts = group.ts;
            for (const auto &part : group.segs) {
                tx.entries.insert(tx.entries.end(),
                                  part.seg.entries.begin(),
                                  part.seg.entries.end());
            }
            txs.push_back(std::move(tx));
            chains[tid].groupEnds.emplace_back(
                group.ts, segmentEnd(group.segs.back().seg));
        }
        chains[tid].lastCommittedEnd = grouper.lastCommittedEnd();
    }

    // Epoch replay rule (DESIGN §12): only transactions covered by the
    // durable frontier may be replayed. Everything newer belongs to an
    // epoch whose fence never completed — its commits were never acked
    // — so it is dropped exactly like a torn strict commit.
    std::uint64_t epoch_dropped = 0;
    TxTimestamp epoch_limit = 0;
    if (epoch_media) {
        std::vector<TxTimestamp> committed_ts;
        committed_ts.reserve(txs.size());
        for (const auto &tx : txs)
            committed_ts.push_back(tx.ts);
        epoch_limit = epochReplayLimit(frontier, std::move(committed_ts));
        auto it = std::remove_if(txs.begin(), txs.end(),
                                 [&](const CommittedTx &tx) {
                                     return tx.ts > epoch_limit;
                                 });
        epoch_dropped =
            static_cast<std::uint64_t>(std::distance(it, txs.end()));
        txs.erase(it, txs.end());
        SpecTxMetrics::get().epochDroppedTxs.add(epoch_dropped);
    }

    // Replay every fresh record in global chronological order: redo
    // for committed transactions, undo for interrupted ones.
    std::sort(txs.begin(), txs.end(),
              [](const CommittedTx &a, const CommittedTx &b) {
                  return a.ts < b.ts;
              });
    std::vector<std::uint8_t> value;
    for (const auto &tx : txs) {
        for (const auto &entry : tx.entries) {
            value.resize(entry.size);
            dev_.load(entry.valuePos, value.data(), entry.size);
            dev_.store(entry.dataOff, value.data(), entry.size);
            dev_.clwbRange(entry.dataOff, entry.size,
                           pmem::TrafficClass::Data);
        }
    }
    dev_.sfence();

    // Re-adopt each surviving chain: keep the valid prefix (its
    // records still cover the data for future interrupted updates),
    // truncate at the tail, and cut any dangling blocks.
    logBytes_.store(0);
    for (unsigned tid = 0; tid < numThreads_; ++tid) {
        if (!chains[tid].present || chains[tid].walk.blocks.empty()) {
            initFreshLog(tid);
            continue;
        }
        const auto &walk = chains[tid].walk;

        // Adopt the chain only up to the end of the last committed
        // transaction; anything beyond it is a torn commit's debris.
        // Under the epoch rule the cut moves earlier, to the last
        // *replayed* group: committed-but-unsealed records must not
        // survive into the adopted prefix, or a later reclaim cycle
        // would compact them into always-replayed records.
        PmOff adopt_pos = chains[tid].lastCommittedEnd;
        if (epoch_media) {
            adopt_pos = kPmNull;
            for (const auto &[ts, end] : chains[tid].groupEnds) {
                if (ts > epoch_limit)
                    break;
                adopt_pos = end;
            }
        }
        if (adopt_pos == kPmNull)
            adopt_pos = walk.blocks.front() + sizeof(BlockHeader);
        std::size_t keep = 0;
        for (std::size_t i = 0; i < walk.blocks.size(); ++i) {
            const auto cap = dev_.loadT<std::uint64_t>(
                walk.blocks[i] + offsetof(BlockHeader, capacity));
            if (adopt_pos >= walk.blocks[i] &&
                adopt_pos <= walk.blocks[i] + cap) {
                keep = i;
                break;
            }
        }

        auto &log = *logs_[tid];
        std::lock_guard<std::mutex> guard(log.mutex);
        log.blocks.assign(walk.blocks.begin(),
                          walk.blocks.begin() +
                              static_cast<std::ptrdiff_t>(keep + 1));
        log.tailPos = adopt_pos - log.blocks.back();
        log.firstOpenBlock = log.blocks.size() - 1;
        log.inTx = false;
        log.openSegs.clear();
        log.entryIndex.clear();
        log.pendingFlush.clear();
        log.preImages.clear();
        log.captured.clear();
        log.writeSet.clear();

        // Cut the chain after the adopted tail and refresh the poison.
        const PmOff tail_block = log.blocks.back();
        dev_.storeT<PmOff>(tail_block + offsetof(BlockHeader, next),
                           kPmNull);
        dev_.clwb(tail_block + offsetof(BlockHeader, next),
                  pmem::TrafficClass::Log);
        const auto cap = dev_.loadT<std::uint64_t>(
            tail_block + offsetof(BlockHeader, capacity));
        if (log.tailPos + sizeof(std::uint64_t) <= cap) {
            dev_.storeT<std::uint64_t>(tail_block + log.tailPos, 0);
            dev_.clwb(tail_block + log.tailPos,
                      pmem::TrafficClass::Log);
        }
        std::size_t bytes = 0;
        for (PmOff base : log.blocks) {
            const auto cap = dev_.loadT<std::uint64_t>(
                base + offsetof(BlockHeader, capacity));
            // Make the surviving block known to the re-opened pool's
            // (volatile) allocator.
            pool_.adopt(base, cap);
            bytes += cap;
        }
        noteLogBytes(static_cast<std::ptrdiff_t>(bytes));
    }
    // Reconcile the epoch frontier with this incarnation's config.
    // A recovered pool restarts with an *empty* window just past the
    // highest surviving timestamp: timestamps consumed by dropped
    // transactions leave permanent gaps, and parking frontier.start
    // above them keeps them below the window where the replay rule
    // never looks for density.
    if (config_.groupCommit) {
        initEpochFrontier(/*adopt_existing=*/true);
        const TxTimestamp base = currentTimestamp();
        storeEpochFrontier(base + 1, base);
    } else if (epoch_media) {
        // The pool is switching back to strict-only operation; retire
        // the frontier so future recoveries use the legacy rule.
        pool_.adopt(frontier_root, kCacheLineSize);
        pool_.setRoot(txn::kEpochFrontierSlot, kPmNull);
        pool_.free(frontier_root);
    }

    flight_.record(forensic::EventType::RecoveryEnd, 0, 0, txs.size());
    dev_.sfence();
    needsRecovery_ = false;
    SpecTxMetrics::get().recoveries.add();
    SpecTxMetrics::get().recoveryReplayedTxs.add(txs.size());
}

// ---------------------------------------------------------------------
// Background log reclamation (Section 4.2)
// ---------------------------------------------------------------------

void
SpecTx::reclaimerMain()
{
    std::unique_lock<std::mutex> lock(reclaimMutex_);
    for (;;) {
        reclaimCv_.wait_for(lock, std::chrono::milliseconds(2), [&] {
            return stopReclaimer_ || reclaimRequested_;
        });
        if (stopReclaimer_)
            return;
        const bool over_threshold =
            logBytes_.load() > config_.reclaimThresholdBytes;
        if (!reclaimRequested_ && !over_threshold)
            continue;
        reclaimRequested_ = false;
        lock.unlock();
        reclaimCycle();
        lock.lock();
    }
}

void
SpecTx::reclaimNow()
{
    reclaimCycle();
}

std::size_t
SpecTx::reclaimCycle()
{
    // Serialize explicit reclaimNow() calls against the background
    // thread; cycles are infrequent, contention is not a concern.
    static std::mutex cycle_mutex;
    std::lock_guard<std::mutex> cycle_guard(cycle_mutex);
    if (needsRecovery_)
        return 0;
    SPECPMT_TRACE_SPAN("reclaim_cycle", "reclaim");
    flight_.record(forensic::EventType::ReclaimBegin, 0, 0,
                   logBytes_.load());

    // Phase 1: freeze the immutable prefix of every chain and build
    // the volatile freshness index: (addr,size) -> newest committed
    // timestamp (the hash table of Figure 5; volatile by design, as it
    // can be rebuilt after a crash).
    std::vector<std::vector<PmOff>> frozen(numThreads_);
    for (unsigned tid = 0; tid < numThreads_; ++tid) {
        auto &log = *logs_[tid];
        std::lock_guard<std::mutex> guard(log.mutex);
        frozen[tid].assign(log.blocks.begin(),
                           log.blocks.begin() +
                               static_cast<std::ptrdiff_t>(
                                   log.firstOpenBlock));
    }

    // Epoch mode: seal before compacting. Every group in the frozen
    // span committed before the freeze, so its epoch registration
    // happened-before this seal — after it, all of them are durable.
    // Compacting an *unsealed* relaxed commit would launder it into an
    // always-replayed compact record, silently promoting a
    // not-yet-acked transaction to durable-after-crash.
    if (config_.groupCommit)
        sealEpoch();

    // Phase 1b: group every thread's frozen segments into
    // transactions with the shared splog_walk rule. Only entries of
    // *committed* transactions may enter the freshness index or a
    // compact record — a torn multi-segment commit leaves
    // valid-checksum non-final segments embedded in the chain, and
    // treating them as committed would launder an uncommitted update
    // into recovery's replay set.
    std::vector<std::vector<GroupedTx>> groups(numThreads_);
    /** Compaction covers frozen blocks [0, cutoff): never split a
     * transaction whose tail lives beyond the boundary. */
    std::vector<std::size_t> cutoff(numThreads_, 0);
    for (unsigned tid = 0; tid < numThreads_; ++tid) {
        TxGrouper grouper;
        for (std::size_t i = 0; i < frozen[tid].size(); ++i) {
            walkBlock(dev_, frozen[tid][i],
                      [&](const DecodedSegment &seg) {
                          grouper.feed(seg, i);
                      });
        }
        const GroupedTx &open = grouper.finish();
        groups[tid] = grouper.committed();
        // A trailing group may complete in the unfrozen tail: keep
        // its blocks out of the compacted span.
        std::size_t cut = open.segs.empty()
                              ? frozen[tid].size()
                              : open.segs.front().blockIndex;
        for (auto it = groups[tid].rbegin(); it != groups[tid].rend();
             ++it) {
            if (it->segs.back().blockIndex >= cut)
                cut = std::min(cut, it->segs.front().blockIndex);
            else
                break; // block indexes are monotone
        }
        cutoff[tid] = cut;
    }

    std::unordered_map<std::uint64_t, TxTimestamp> newest;
    for (unsigned tid = 0; tid < numThreads_; ++tid) {
        for (const auto &group : groups[tid]) {
            for (const auto &info : group.segs) {
                for (const auto &entry : info.seg.entries) {
                    auto &ts = newest[entryKey(entry.dataOff,
                                               entry.size)];
                    if (group.ts > ts)
                        ts = group.ts;
                }
            }
        }
    }

    // Phase 2: per-thread compaction of blocks [0, cutoff).
    std::size_t freed_total = 0;
    for (unsigned tid = 0; tid < numThreads_; ++tid) {
        if (cutoff[tid] == 0)
            continue;

        // Measure span vs fresh bytes; build one compact record per
        // committed transaction that lies entirely within the span.
        std::size_t frozen_bytes = 0;
        for (std::size_t i = 0; i < cutoff[tid]; ++i)
            frozen_bytes += pool_.allocationSize(frozen[tid][i]);
        std::size_t fresh_bytes = 0;
        std::vector<DecodedSegment> fresh_segments;
        for (const auto &group : groups[tid]) {
            if (group.segs.back().blockIndex >= cutoff[tid])
                continue;
            DecodedSegment compacted;
            compacted.timestamp = group.ts;
            compacted.final = true;
            for (const auto &info : group.segs) {
                for (const auto &entry : info.seg.entries) {
                    if (newest.at(entryKey(entry.dataOff,
                                           entry.size)) == group.ts) {
                        compacted.entries.push_back(entry);
                        fresh_bytes += entryBytes(entry.size);
                    }
                }
            }
            // Epoch mode keeps a header-only tombstone even when every
            // entry is stale: deleting the whole transaction would
            // punch a hole into the timestamp sequence and stall the
            // frontier rule's dense-prefix scan below genuinely
            // durable transactions.
            if (!compacted.entries.empty() || config_.groupCommit) {
                fresh_bytes += sizeof(SegHead);
                fresh_segments.push_back(std::move(compacted));
            }
        }
        if (fresh_bytes + sizeof(BlockHeader) + 8 >
            static_cast<std::size_t>(
                (1.0 - config_.compactionMinSavings) *
                static_cast<double>(frozen_bytes))) {
            continue; // not worth rewriting
        }

        // Write the compact blocks.
        std::vector<PmOff> compact_blocks;
        PmOff tail_pos = 0;
        auto ensure = [&](std::size_t bytes) {
            const std::size_t need = bytes + sizeof(std::uint64_t);
            if (!compact_blocks.empty()) {
                const auto cap = dev_.loadT<std::uint64_t>(
                    compact_blocks.back() +
                    offsetof(BlockHeader, capacity));
                if (tail_pos + need <= cap)
                    return;
            }
            std::size_t size = config_.logBlockSize;
            if (sizeof(BlockHeader) + need > size) {
                size = (sizeof(BlockHeader) + need + kCacheLineSize - 1) &
                       ~(kCacheLineSize - 1);
            }
            const PmOff block = pool_.allocAligned(size, kCacheLineSize);
            size = pool_.allocationSize(block);
            BlockHeader header{kPmNull,
                               compact_blocks.empty()
                                   ? kPmNull
                                   : compact_blocks.back(),
                               size, 0};
            dev_.storeT(block, header);
            dev_.storeT<std::uint64_t>(block + sizeof(BlockHeader), 0);
            if (!compact_blocks.empty()) {
                dev_.storeT<PmOff>(compact_blocks.back() +
                                       offsetof(BlockHeader, next),
                                   block);
            }
            compact_blocks.push_back(block);
            tail_pos = sizeof(BlockHeader);
            noteLogBytes(static_cast<std::ptrdiff_t>(size));
        };

        std::vector<std::uint8_t> value;
        for (const auto &seg : fresh_segments) {
            std::size_t seg_bytes = sizeof(SegHead);
            for (const auto &entry : seg.entries)
                seg_bytes += entryBytes(entry.size);
            ensure(seg_bytes);

            const PmOff base = compact_blocks.back();
            const PmOff seg_pos = base + tail_pos;
            PmOff cursor = seg_pos + sizeof(SegHead);
            for (const auto &entry : seg.entries) {
                EntryHead ehead{entry.dataOff, entry.size, 0};
                dev_.storeT(cursor, ehead);
                value.resize(entry.size);
                dev_.load(entry.valuePos, value.data(), entry.size);
                dev_.store(cursor + sizeof(EntryHead), value.data(),
                           entry.size);
                cursor += entryBytes(entry.size);
            }
            SegHead head;
            head.sizeBytes = static_cast<std::uint32_t>(seg_bytes);
            head.timestamp = seg.timestamp;
            head.flags = segFlagsWithCount(kSegFinal, 1);
            head.numEntries =
                static_cast<std::uint32_t>(seg.entries.size());
            head.crc = segmentCrc(dev_, seg_pos, head);
            dev_.storeT(seg_pos, head);
            tail_pos += seg_bytes;
        }
        if (!compact_blocks.empty()) {
            // Trailing poison in the last compact block.
            dev_.storeT<std::uint64_t>(compact_blocks.back() + tail_pos,
                                       0);
        }

        // The successor of the compacted span.
        PmOff successor = kPmNull;
        {
            auto &log = *logs_[tid];
            std::lock_guard<std::mutex> guard(log.mutex);
            successor = log.blocks[cutoff[tid]];
        }
        if (!compact_blocks.empty()) {
            dev_.storeT<PmOff>(compact_blocks.back() +
                                   offsetof(BlockHeader, next),
                               successor);
        }

        // Fence 1: persist the compact blocks in full.
        for (PmOff block : compact_blocks) {
            dev_.clwbRange(block, pool_.allocationSize(block),
                           pmem::TrafficClass::Log);
        }
        dev_.sfence();

        // Fence 2: atomically splice by switching the log head; fix
        // the successor's back pointer in the same barrier.
        const PmOff new_head = compact_blocks.empty()
            ? successor
            : compact_blocks.front();
        dev_.storeT<PmOff>(successor + offsetof(BlockHeader, prev),
                           compact_blocks.empty()
                               ? kPmNull
                               : compact_blocks.back());
        dev_.clwb(successor + offsetof(BlockHeader, prev),
                  pmem::TrafficClass::Log);
        pool_.setRoot(txn::logHeadSlot(tid), new_head);

        // Publish the new chain to the worker and free the old blocks.
        {
            auto &log = *logs_[tid];
            std::lock_guard<std::mutex> guard(log.mutex);
            std::vector<PmOff> rebuilt = compact_blocks;
            rebuilt.insert(rebuilt.end(),
                           log.blocks.begin() +
                               static_cast<std::ptrdiff_t>(
                                   cutoff[tid]),
                           log.blocks.end());
            log.firstOpenBlock = log.firstOpenBlock - cutoff[tid] +
                                 compact_blocks.size();
            log.blocks = std::move(rebuilt);
        }
        for (std::size_t i = 0; i < cutoff[tid]; ++i) {
            const PmOff block = frozen[tid][i];
            const std::size_t size = pool_.allocationSize(block);
            freed_total += size;
            noteLogBytes(-static_cast<std::ptrdiff_t>(size));
            pool_.free(block);
        }
    }
    flight_.record(forensic::EventType::ReclaimEnd, 0, 0, freed_total);
    reclaimCycles_.fetch_add(1);
    SpecTxMetrics::get().reclaimCycles.add();
    SpecTxMetrics::get().reclaimBytesFreed.add(freed_total);
    return freed_total;
}

} // namespace specpmt::core
