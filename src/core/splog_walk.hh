/**
 * @file
 * Transaction grouping over a chronological stream of checksum-valid
 * speculative-log segments — the one place the "which segment runs
 * form committed transactions" rule lives.
 *
 * Three consumers feed the same grouper and must agree byte-for-byte
 * on its verdicts:
 *
 *  - post-crash recovery (SpecTx::recover), which replays exactly the
 *    committed groups and truncates everything after the last one;
 *  - the background reclaimer (SpecTx::reclaimCycle), which may only
 *    compact entries of committed groups — laundering a torn commit's
 *    valid-checksum debris into a compact record would hand recovery
 *    an uncommitted update as committed;
 *  - the offline forensic inspector (src/forensic), which classifies
 *    every transaction in a crash image independently of the runtime
 *    and is diffed against the runtime's actual recovery decisions.
 *
 * The rule (Section 4.1 plus the segment-count seal from the
 * crashmatrix-found torn-commit fix): a transaction is a run of
 * consecutive same-timestamp segments; it is committed iff the run
 * ends in a final-flagged segment whose seal attests a segment count
 * equal to the run's length. Any other run is discarded — either a
 * timestamp break (a new transaction's segments arrive before a final
 * seal, so the previous run is an interrupted commit's leftovers) or
 * a count mismatch (an intermediate segment's header never drained
 * and read back as tail poison, shortening the run the final seal
 * describes). A run still open when the walk ends is the in-flight
 * tail: the transaction the crash interrupted.
 */

#ifndef SPECPMT_CORE_SPLOG_WALK_HH
#define SPECPMT_CORE_SPLOG_WALK_HH

#include <cstddef>
#include <vector>

#include "core/splog_format.hh"

namespace specpmt::core
{

/** Position right after @p seg (segments are 8-aligned in a block). */
constexpr PmOff
segmentEnd(const DecodedSegment &seg)
{
    return seg.pos + ((seg.sizeBytes + 7) & ~std::uint32_t{7});
}

/** Why a run of valid-checksum segments was not committed. */
enum class TxDiscard
{
    /** A different timestamp arrived before any final seal: the run
     * is an interrupted transaction's leftovers (only possible for
     * debris predating the current chain tail). */
    TimestampBreak,
    /** The final seal attests to more segments than the run holds: an
     * intermediate segment was lost to the crash (read back as tail
     * poison), so committing the run would apply a subset of the
     * transaction. */
    SegCountMismatch,
    /** A quarantined (media-corrupted) segment interrupted the run:
     * part of the transaction is unreadable, so committing the
     * remainder would apply a subset. */
    QuarantineGap,
};

/** One segment inside a grouped transaction. */
struct GroupedSeg
{
    DecodedSegment seg;
    /** Caller-supplied ordinal (the reclaimer passes the frozen-block
     * index; chain walkers may leave it 0). */
    std::size_t blockIndex = 0;
};

/** A maximal run of consecutive same-timestamp segments. */
struct GroupedTx
{
    TxTimestamp ts = 0;
    std::vector<GroupedSeg> segs;
};

/** A discarded run plus the reason it cannot be committed. */
struct DiscardedTx
{
    TxDiscard reason = TxDiscard::TimestampBreak;
    GroupedTx tx;
};

/** The grouper; see file comment. Feed segments in walk order, then
 * call finish() exactly once before reading the result vectors. */
class TxGrouper
{
  public:
    /** Feed the next checksum-valid segment of the walk. */
    void feed(const DecodedSegment &seg, std::size_t block_index = 0);

    /**
     * The walker quarantined a CRC-failing segment at this point of
     * the stream: any open run loses a member and must be discarded
     * (TxDiscard::QuarantineGap); a later final seal for the same
     * timestamp will then fail its count attestation as well.
     */
    void noteQuarantine();

    /** End of walk: whatever is still open becomes the in-flight
     * tail. @return the in-flight run (empty if the walk ended on a
     * transaction boundary). */
    const GroupedTx &finish();

    /** Committed transactions, in walk (= per-thread commit) order. */
    const std::vector<GroupedTx> &committed() const { return committed_; }

    /** Discarded runs, in walk order. */
    const std::vector<DiscardedTx> &discarded() const { return discarded_; }

    /** The run the walk ended inside (valid after finish()). */
    const GroupedTx &inFlight() const { return inFlight_; }

    /** End position of the last committed transaction, or kPmNull if
     * none committed — recovery's chain adoption point. */
    PmOff lastCommittedEnd() const { return lastCommittedEnd_; }

  private:
    GroupedTx open_;
    std::vector<GroupedTx> committed_;
    std::vector<DiscardedTx> discarded_;
    GroupedTx inFlight_;
    PmOff lastCommittedEnd_ = kPmNull;
    bool finished_ = false;
};

/**
 * The epoch-mode replay rule (DESIGN §12), shared — like the grouping
 * rule above — by recovery, and the offline inspector, which must
 * agree on every image.
 *
 * Given the durable frontier record and the timestamps of every
 * committed (checksum-valid, count-attested) transaction found in the
 * image, returns the highest timestamp recovery may replay: a
 * transaction survives iff its timestamp is <= the returned limit.
 *
 * Rationale: timestamps below frontier.start belong to earlier
 * epochs whose fences completed before this frontier version was even
 * stored, so they are always safe. Inside the window
 * [frontier.start, frontier.end], the seals are either all durable
 * (the epoch fence completed — in which case every window timestamp
 * is present, since commits allocate timestamps densely and the
 * compactor tombstones rather than deletes) or the fence never
 * completed and nothing in the window was acked — in which case any
 * timestamp-dense prefix is a consistent cut, because dependent
 * transactions commit in timestamp order. Timestamps beyond the
 * window joined a later, never-sealed epoch and are always dropped.
 */
TxTimestamp epochReplayLimit(const EpochFrontier &frontier,
                             std::vector<TxTimestamp> committed_ts);

} // namespace specpmt::core

#endif // SPECPMT_CORE_SPLOG_WALK_HH
