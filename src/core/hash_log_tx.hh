/**
 * @file
 * The hash-table speculative log alternative that Section 4 evaluates
 * and rejects: one log record per datum, located by an address-indexed
 * persistent hash table and overwritten in place on every update.
 *
 * This conserves memory (no stale records) but replaces the sequential
 * log-append pattern with random persistent-memory writes, which the
 * paper measures at a 3.2x slowdown versus the sequential design.
 * bench_seq_vs_hash_log reproduces that comparison. The class is a
 * *performance* strawman, faithful to the paper's framing; it is not
 * part of the recoverable-runtime set (in-place record overwrites are
 * not crash-atomic across a transaction without further machinery).
 */

#ifndef SPECPMT_CORE_HASH_LOG_TX_HH
#define SPECPMT_CORE_HASH_LOG_TX_HH

#include <cstdint>
#include <unordered_set>
#include <vector>

#include "forensic/flight_recorder.hh"
#include "txn/tx_runtime.hh"

namespace specpmt::core
{

/** Hash-table-log variant of speculative logging (Section 4). */
class HashLogTx : public txn::TxRuntime
{
  public:
    /** One bucket is exactly one cache line. */
    struct Bucket
    {
        std::uint64_t off;   ///< chunk address, 0 = empty
        std::uint32_t size;
        std::uint32_t flags;
        std::uint64_t timestamp;
        std::uint8_t value[40];
    };
    static_assert(sizeof(Bucket) == kCacheLineSize);

    /** Value bytes stored per bucket. */
    static constexpr std::size_t kChunk = 40;

    HashLogTx(pmem::PmemPool &pool, unsigned num_threads,
              std::size_t num_buckets = 1u << 16);

    const char *name() const override { return "hash-splog"; }

    void txBegin(ThreadId tid) override;
    void txStore(ThreadId tid, PmOff off, const void *src,
                 std::size_t size) override;
    void txCommit(ThreadId tid) override;

  private:
    /** Find or claim the bucket for @p chunk_off (linear probing). */
    PmOff bucketFor(PmOff chunk_off);

    PmOff tableOff_;
    std::size_t numBuckets_;
    /** Disabled unless the pool carries a flight-recorder ring. */
    forensic::FlightRecorder flight_;
    /** Volatile occupancy mirror to keep probing cheap and honest. */
    std::vector<std::uint64_t> keys_;
    struct TxState
    {
        bool inTx = false;
        std::unordered_set<PmOff> touched; ///< bucket lines to flush
    };
    std::vector<TxState> txs_;
};

} // namespace specpmt::core

#endif // SPECPMT_CORE_HASH_LOG_TX_HH
