#include "core/splog_format.hh"

#include "common/crc32.hh"
#include "common/logging.hh"

namespace specpmt::core
{

std::uint32_t
segmentCrc(const pmem::PmemDevice &dev, PmOff seg_pos, const SegHead &head)
{
    std::uint32_t crc = crc32c(&seg_pos, sizeof(seg_pos));
    crc = crc32c(&head.sizeBytes, sizeof(head.sizeBytes), crc);
    crc = crc32c(&head.timestamp, sizeof(head.timestamp), crc);
    crc = crc32c(&head.flags, sizeof(head.flags), crc);
    crc = crc32c(&head.numEntries, sizeof(head.numEntries), crc);

    // Entry bytes, straight from the device image.
    const std::size_t body = head.sizeBytes - sizeof(SegHead);
    std::vector<std::uint8_t> buffer(body);
    dev.load(seg_pos + sizeof(SegHead), buffer.data(), body);
    return crc32c(buffer.data(), body, crc);
}

std::uint32_t
epochFrontierCrc(const EpochFrontier &frontier)
{
    std::uint32_t crc = crc32c(&frontier.magic, sizeof(frontier.magic));
    crc = crc32c(&frontier.start, sizeof(frontier.start), crc);
    return crc32c(&frontier.end, sizeof(frontier.end), crc);
}

bool
epochFrontierValid(const EpochFrontier &frontier)
{
    return frontier.magic == kEpochFrontierMagic &&
           frontier.crc == epochFrontierCrc(frontier);
}

namespace
{

/**
 * Parse the segments of one block starting at its first record slot.
 *
 * @return WalkEnd::TornRecord on a crc mismatch; WalkEnd::CleanTail on
 *         poison or block exhaustion. @p next_out receives the chain
 *         pointer for the caller to follow on CleanTail.
 */
WalkEnd
parseBlock(const pmem::PmemDevice &dev, PmOff block,
           const std::function<void(const DecodedSegment &)> &visit,
           PmOff *next_out, PmOff *stop_out = nullptr,
           std::vector<QuarantinedSegment> *quarantine = nullptr,
           const std::function<void(const QuarantinedSegment &)>
               *on_quarantine = nullptr)
{
    const auto bh = dev.loadT<BlockHeader>(block);
    if (next_out)
        *next_out = bh.next;

    PmOff pos = block + sizeof(BlockHeader);
    // A block reached through a never-persisted chain pointer may hold
    // a torn header; treat anything implausible as a torn record.
    if (bh.capacity < sizeof(BlockHeader) + 8 ||
        block + bh.capacity > dev.size()) {
        if (next_out)
            *next_out = kPmNull;
        if (stop_out)
            *stop_out = pos;
        return WalkEnd::TornRecord;
    }
    struct StopGuard
    {
        PmOff *out;
        PmOff *pos;
        ~StopGuard()
        {
            if (out)
                *out = *pos;
        }
    } stop_guard{stop_out, &pos};
    const PmOff end = block + bh.capacity;
    while (pos + sizeof(SegHead) <= end) {
        const auto head = dev.loadT<SegHead>(pos);
        if (head.sizeBytes == 0)
            return WalkEnd::CleanTail; // poison: chronological tail here
        if (head.sizeBytes < sizeof(SegHead) || pos + head.sizeBytes > end)
            return WalkEnd::TornRecord;
        if (segmentCrc(dev, pos, head) != head.crc) {
            // Torn tail or corrupted interior record? A crash-torn
            // commit is by construction the chronologically last
            // record, so if the position this header's size points to
            // holds another checksum-valid segment, the failure is
            // media corruption of an old record: quarantine it and
            // keep walking. Anything else is the torn tail, exactly
            // as before.
            const PmOff skip =
                pos + ((head.sizeBytes + 7) & ~std::uint64_t{7});
            bool interior = false;
            if (quarantine != nullptr &&
                skip + sizeof(SegHead) <= end) {
                const auto next_head = dev.loadT<SegHead>(skip);
                if (next_head.sizeBytes >= sizeof(SegHead) &&
                    skip + next_head.sizeBytes <= end &&
                    segmentCrc(dev, skip, next_head) == next_head.crc)
                    interior = true;
            }
            if (!interior)
                return WalkEnd::TornRecord;
            const QuarantinedSegment q{pos, head.sizeBytes, block};
            quarantine->push_back(q);
            if (on_quarantine != nullptr && *on_quarantine)
                (*on_quarantine)(q);
            pos = skip;
            continue;
        }

        DecodedSegment seg;
        seg.pos = pos;
        seg.timestamp = head.timestamp;
        seg.final = (head.flags & kSegFinal) != 0;
        seg.flags = head.flags;
        seg.txSegments = segCountFromFlags(head.flags);
        seg.sizeBytes = head.sizeBytes;

        PmOff cursor = pos + sizeof(SegHead);
        const PmOff seg_end = pos + head.sizeBytes;
        bool entries_ok = true;
        for (std::uint32_t i = 0; i < head.numEntries; ++i) {
            if (cursor + sizeof(EntryHead) > seg_end) {
                entries_ok = false;
                break;
            }
            const auto ehead = dev.loadT<EntryHead>(cursor);
            if (ehead.size == 0 ||
                cursor + entryBytes(ehead.size) > seg_end) {
                entries_ok = false;
                break;
            }
            seg.entries.push_back({ehead.off, ehead.size,
                                   cursor + sizeof(EntryHead)});
            cursor += entryBytes(ehead.size);
        }
        if (!entries_ok)
            return WalkEnd::TornRecord; // crc matched garbage? bail out

        visit(seg);
        pos += (head.sizeBytes + 7) & ~std::uint64_t{7};
    }
    return WalkEnd::CleanTail;
}

} // namespace

WalkResult
walkChain(const pmem::PmemDevice &dev, PmOff head_block,
          const std::function<void(const DecodedSegment &)> &visit,
          const std::function<void(const QuarantinedSegment &)>
              &on_quarantine)
{
    WalkResult result;
    PmOff block = head_block;
    while (block != kPmNull) {
        // Validate the block header before adopting the block: a block
        // reached through a chain pointer that persisted before the
        // block's own header did may be arbitrary garbage. The walk
        // ends at the previous block's tail in that case.
        if (block + sizeof(BlockHeader) > dev.size()) {
            result.end = WalkEnd::TornRecord;
            return result;
        }
        const auto bh = dev.loadT<BlockHeader>(block);
        if (bh.capacity < sizeof(BlockHeader) + 8 ||
            bh.capacity > dev.size() ||
            block + bh.capacity > dev.size()) {
            result.end = WalkEnd::TornRecord;
            return result;
        }
        // A corrupted chain pointer aimed at an already-visited block
        // would loop forever; offline inspection of damaged images
        // must terminate on arbitrary garbage.
        for (PmOff seen : result.blocks) {
            if (seen == block) {
                result.end = WalkEnd::TornRecord;
                return result;
            }
        }
        result.blocks.push_back(block);
        result.tailBlock = block;
        PmOff next = kPmNull;
        PmOff stop = kPmNull;
        const WalkEnd block_end =
            parseBlock(dev, block, visit, &next, &stop,
                       &result.quarantined, &on_quarantine);
        result.tailPos = stop;
        if (block_end == WalkEnd::TornRecord) {
            result.end = WalkEnd::TornRecord;
            return result;
        }
        block = next;
    }
    result.end = WalkEnd::CleanTail;
    return result;
}

void
walkBlock(const pmem::PmemDevice &dev, PmOff block,
          const std::function<void(const DecodedSegment &)> &visit)
{
    parseBlock(dev, block, visit, nullptr);
}

} // namespace specpmt::core
