#include "core/hash_log_tx.hh"

#include <cstring>

#include "common/hash.hh"
#include "common/logging.hh"
#include "obs/metrics.hh"
#include "obs/trace.hh"
#include "obs/trace_context.hh"

namespace specpmt::core
{

namespace
{

/** Hash-log runtime counters, registered once per process. */
struct HashLogMetrics
{
    obs::Counter &begins;
    obs::Counter &commits;
    obs::Counter &bucketWrites;

    static HashLogMetrics &
    get()
    {
        auto &reg = obs::Registry::global();
        static HashLogMetrics m{
            reg.counter("specpmt_hash_log_tx_begins_total",
                        "hash-log transactions started"),
            reg.counter("specpmt_hash_log_tx_commits_total",
                        "hash-log transactions committed"),
            reg.counter("specpmt_hash_log_bucket_writes_total",
                        "in-place hash-log bucket records written"),
        };
        return m;
    }
};

} // namespace

HashLogTx::HashLogTx(pmem::PmemPool &pool, unsigned num_threads,
                     std::size_t num_buckets)
    : TxRuntime(pool, num_threads), numBuckets_(num_buckets),
      flight_(forensic::FlightRecorder::attach(pool)),
      keys_(num_buckets, 0), txs_(num_threads)
{
    SPECPMT_ASSERT((num_buckets & (num_buckets - 1)) == 0);
    tableOff_ = pool_.allocAligned(num_buckets * sizeof(Bucket),
                                   kCacheLineSize);
}

PmOff
HashLogTx::bucketFor(PmOff chunk_off)
{
    std::size_t index = mix64(chunk_off) & (numBuckets_ - 1);
    for (std::size_t probe = 0; probe < numBuckets_; ++probe) {
        if (keys_[index] == chunk_off || keys_[index] == 0) {
            keys_[index] = chunk_off;
            return tableOff_ + index * sizeof(Bucket);
        }
        index = (index + 1) & (numBuckets_ - 1);
    }
    SPECPMT_FATAL("hash log table full (%zu buckets)", numBuckets_);
}

void
HashLogTx::txBegin(ThreadId tid)
{
    auto &tx = txs_.at(tid);
    SPECPMT_ASSERT(!tx.inTx);
    tx.inTx = true;
    tx.touched.clear();
    HashLogMetrics::get().begins.add();
    flight_.record(forensic::EventType::TxBegin, tid);
}

void
HashLogTx::txStore(ThreadId tid, PmOff off, const void *src,
                   std::size_t size)
{
    auto &tx = txs_.at(tid);
    SPECPMT_ASSERT(tx.inTx);

    // One in-place record per kChunk-sized piece of the datum: the
    // memory-thrifty but locality-hostile layout from Section 4.
    const auto *bytes = static_cast<const std::uint8_t *>(src);
    for (std::size_t done = 0; done < size; done += kChunk) {
        const std::size_t piece = std::min(kChunk, size - done);
        const PmOff bucket_off = bucketFor(off + done);

        Bucket bucket;
        std::memset(&bucket, 0, sizeof(bucket));
        bucket.off = off + done;
        bucket.size = static_cast<std::uint32_t>(piece);
        std::memcpy(bucket.value, bytes + done, piece);
        dev_.storeT(bucket_off, bucket);
        tx.touched.insert(bucket_off);
        HashLogMetrics::get().bucketWrites.add();
        obs::traceContext().cost.logBytes += sizeof(Bucket);
    }
    obs::traceContext().cost.userBytes += size;

    dev_.store(off, src, size);
}

void
HashLogTx::txCommit(ThreadId tid)
{
    auto &tx = txs_.at(tid);
    SPECPMT_ASSERT(tx.inTx);
    tx.inTx = false;
    if (tx.touched.empty())
        return;

    // Persist the touched buckets — scattered lines, so unlike the
    // sequential log they see no XPLine write combining.
    {
        const std::uint64_t flushStartNs = SPECPMT_TRACE_BEGIN();
        const TxTimestamp ts = nextTimestamp();
        for (PmOff bucket_off : tx.touched) {
            dev_.storeT(bucket_off + offsetof(Bucket, timestamp), ts);
            dev_.clwb(bucket_off, pmem::TrafficClass::Log);
        }
        // Rides the commit fence below.
        flight_.record(forensic::EventType::TxCommit, tid, ts,
                       tx.touched.size());
        dev_.sfence();
        if (flushStartNs != 0 && obs::Tracer::global().enabled()) {
            const auto &tctx = obs::traceContext();
            obs::Tracer::global().record(
                "flush_batch", "flush", flushStartNs,
                obs::Tracer::now(),
                tctx.sampled ? tctx.traceId : 0);
        }
    }
    tx.touched.clear();
    HashLogMetrics::get().commits.add();
}

} // namespace specpmt::core
