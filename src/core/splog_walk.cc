#include "core/splog_walk.hh"

#include <algorithm>
#include <utility>

#include "common/logging.hh"

namespace specpmt::core
{

void
TxGrouper::feed(const DecodedSegment &seg, std::size_t block_index)
{
    SPECPMT_ASSERT(!finished_);
    if (!open_.segs.empty() && open_.ts != seg.timestamp) {
        discarded_.push_back(
            {TxDiscard::TimestampBreak, std::move(open_)});
        open_ = GroupedTx{};
    }
    open_.ts = seg.timestamp;
    open_.segs.push_back({seg, block_index});
    if (!seg.final)
        return;
    if (seg.txSegments != open_.segs.size()) {
        discarded_.push_back(
            {TxDiscard::SegCountMismatch, std::move(open_)});
        open_ = GroupedTx{};
        return;
    }
    lastCommittedEnd_ = segmentEnd(seg);
    committed_.push_back(std::move(open_));
    open_ = GroupedTx{};
}

void
TxGrouper::noteQuarantine()
{
    SPECPMT_ASSERT(!finished_);
    if (open_.segs.empty())
        return;
    discarded_.push_back({TxDiscard::QuarantineGap, std::move(open_)});
    open_ = GroupedTx{};
}

const GroupedTx &
TxGrouper::finish()
{
    SPECPMT_ASSERT(!finished_);
    finished_ = true;
    inFlight_ = std::move(open_);
    open_ = GroupedTx{};
    return inFlight_;
}

TxTimestamp
epochReplayLimit(const EpochFrontier &frontier,
                 std::vector<TxTimestamp> committed_ts)
{
    if (!epochFrontierValid(frontier) || frontier.start == 0)
        return 0; // unreadable frontier: replay nothing committed
    std::sort(committed_ts.begin(), committed_ts.end());
    TxTimestamp limit = frontier.start - 1;
    auto it = std::lower_bound(committed_ts.begin(), committed_ts.end(),
                               frontier.start);
    while (limit < frontier.end && it != committed_ts.end() &&
           *it == limit + 1) {
        ++limit;
        // Duplicate timestamps cannot occur across healthy chains but
        // a corrupted image might present them; skip repeats so the
        // scan still terminates at the first true gap.
        while (it != committed_ts.end() && *it == limit)
            ++it;
    }
    return limit;
}

} // namespace specpmt::core
