#include "core/splog_walk.hh"

#include <utility>

#include "common/logging.hh"

namespace specpmt::core
{

void
TxGrouper::feed(const DecodedSegment &seg, std::size_t block_index)
{
    SPECPMT_ASSERT(!finished_);
    if (!open_.segs.empty() && open_.ts != seg.timestamp) {
        discarded_.push_back(
            {TxDiscard::TimestampBreak, std::move(open_)});
        open_ = GroupedTx{};
    }
    open_.ts = seg.timestamp;
    open_.segs.push_back({seg, block_index});
    if (!seg.final)
        return;
    if (seg.txSegments != open_.segs.size()) {
        discarded_.push_back(
            {TxDiscard::SegCountMismatch, std::move(open_)});
        open_ = GroupedTx{};
        return;
    }
    lastCommittedEnd_ = segmentEnd(seg);
    committed_.push_back(std::move(open_));
    open_ = GroupedTx{};
}

const GroupedTx &
TxGrouper::finish()
{
    SPECPMT_ASSERT(!finished_);
    finished_ = true;
    inFlight_ = std::move(open_);
    open_ = GroupedTx{};
    return inFlight_;
}

} // namespace specpmt::core
