/**
 * @file
 * On-media format of the speculative log (paper Section 4.1) and the
 * shared walker used by commit-time bookkeeping, the background
 * reclaimer, and post-crash recovery.
 *
 * A per-thread log area is a forward-chained list of *log blocks*:
 *
 *   [BlockHeader][segment][segment]...[poison]
 *
 * Each committed transaction contributes one or more *segments*
 * (several only when the transaction's entries overflow a block).
 * A segment is:
 *
 *   [SegHead crc|sizeBytes|timestamp|flags|numEntries]
 *   [EntryHead off|size][value, 8-aligned] * numEntries
 *
 * The crc covers everything after the crc field and is written only at
 * commit — it doubles as the commit flag (a torn or absent crc means
 * the transaction never committed), exactly the dedicated-flag-free
 * design in the paper. The timestamp orders records across threads for
 * recovery. A zero sizeBytes where a segment header would start is the
 * chronological tail poison: the walker either follows the block's
 * next pointer or stops.
 */

#ifndef SPECPMT_CORE_SPLOG_FORMAT_HH
#define SPECPMT_CORE_SPLOG_FORMAT_HH

#include <cstdint>
#include <functional>
#include <vector>

#include "common/types.hh"
#include "pmem/pmem_device.hh"

namespace specpmt::core
{

/** Chain pointers at the start of every log block. */
struct BlockHeader
{
    PmOff next;
    PmOff prev;
    std::uint64_t capacity; ///< usable bytes including this header
    std::uint64_t pad;
};
static_assert(sizeof(BlockHeader) == 32);

/** Segment (log record) header; see file comment. */
struct SegHead
{
    std::uint32_t crc;
    std::uint32_t sizeBytes; ///< whole segment, including this header
    std::uint64_t timestamp;
    std::uint32_t flags;     ///< kSeg* bits; final seals also carry
                             ///< the tx's segment count (see below)
    std::uint32_t numEntries;
};
static_assert(sizeof(SegHead) == 24);

/** Flag: this segment completes its transaction. */
constexpr std::uint32_t kSegFinal = 0x1;

/**
 * A transaction whose entries overflow a block spans several segments,
 * each sealed with its own checksum. The final seal alone cannot prove
 * the earlier segments reached the media: an intermediate segment
 * whose header line never drained reads back as tail poison, so the
 * walker skips it and follows the (persisted) chain pointer straight
 * to a valid final seal — silently committing a subset of the
 * transaction. To close that hole, the final segment's flags carry the
 * transaction's total segment count in the bits above
 * kSegCountShift; recovery only accepts a transaction whose run of
 * same-timestamp segments is exactly that long.
 */
constexpr unsigned kSegCountShift = 8;

/** Final-segment flags carrying @p count total segments. */
constexpr std::uint32_t
segFlagsWithCount(std::uint32_t flags, std::uint32_t count)
{
    return flags | (count << kSegCountShift);
}

/** Total segments of the transaction a final seal attests to. */
constexpr std::uint32_t
segCountFromFlags(std::uint32_t flags)
{
    return flags >> kSegCountShift;
}

/**
 * Flags used by the hybrid (hardware-protocol) log, Section 5: an
 * undo record created for a cold line, and a whole-page speculative
 * record created on a cold->hot transition. For these, the timestamp
 * field carries the creating transaction's per-thread sequence number
 * rather than a commit timestamp.
 */
constexpr std::uint32_t kSegUndo = 0x2;
constexpr std::uint32_t kSegPage = 0x4;

/** Per-datum entry header inside a segment. */
struct EntryHead
{
    std::uint64_t off;
    std::uint32_t size;
    std::uint32_t pad;
};
static_assert(sizeof(EntryHead) == 16);

/** Bytes an entry occupies in the log. */
constexpr std::size_t
entryBytes(std::size_t value_size)
{
    return sizeof(EntryHead) + ((value_size + 7) & ~std::size_t{7});
}

/** Default log block size (paper: on-demand fixed-size blocks). */
constexpr std::size_t kLogBlockSize = 4096;

/**
 * On-media epoch frontier record (group-commit mode; DESIGN §12).
 *
 * One cache line, published at root slot txn::kEpochFrontierSlot,
 * overwritten at the start of every epoch seal so its store rides the
 * seal's own fence. [start, end] is the commit-timestamp window of
 * the epoch being sealed; every committed transaction with a smaller
 * timestamp is covered by an earlier, completed epoch fence. The
 * recovery rule built on it (epochReplayLimit in splog_walk) replays
 * the longest timestamp-dense prefix and thereby never replays a
 * transaction whose predecessors' seals may be missing, and never
 * drops one whose ack a client could have observed.
 */
struct EpochFrontier
{
    std::uint64_t magic;
    std::uint64_t start; ///< first timestamp of the epoch being sealed
    std::uint64_t end;   ///< last timestamp of that epoch
    std::uint32_t crc;   ///< over magic/start/end
    std::uint32_t pad;
};
static_assert(sizeof(EpochFrontier) == 32);

constexpr std::uint64_t kEpochFrontierMagic = 0x314F504543455053ull;

/** Checksum of a frontier record's payload fields. */
std::uint32_t epochFrontierCrc(const EpochFrontier &frontier);

/** Magic + checksum validation. */
bool epochFrontierValid(const EpochFrontier &frontier);

/**
 * Compute a segment's crc from the device image: covers the SegHead
 * fields after crc plus all entry bytes, seeded by the segment's
 * location so a record can never validate at a different position
 * (e.g. in a recycled block).
 */
std::uint32_t segmentCrc(const pmem::PmemDevice &dev, PmOff seg_pos,
                         const SegHead &head);

/** A decoded log entry (value still resident in the device image). */
struct DecodedEntry
{
    PmOff dataOff;   ///< address the entry describes
    std::uint32_t size;
    PmOff valuePos;  ///< where the logged value lives in the log area
};

/** A decoded, checksum-valid segment. */
struct DecodedSegment
{
    PmOff pos = kPmNull;        ///< segment start in the log area
    TxTimestamp timestamp = 0;
    bool final = false;         ///< completes its transaction
    std::uint32_t flags = 0;    ///< raw SegHead flags
    /** On a final segment: the tx's total segment count (0 if the
     * writer predates the count encoding, e.g. hand-built fixtures). */
    std::uint32_t txSegments = 0;
    std::uint32_t sizeBytes = 0;
    std::vector<DecodedEntry> entries;
};

/** Why a walk over one thread's chain ended. */
enum class WalkEnd
{
    CleanTail,   ///< poison / end of chain: everything parsed
    TornRecord,  ///< crc mismatch: crash interrupted a commit here
};

/**
 * A CRC-failing segment the walker skipped instead of stopping at:
 * media corruption of an *interior* record, distinguishable from a
 * crash-torn tail because a checksum-valid segment follows it at the
 * position its (plausible) size header points to. Crash-torn tails
 * never look like this — nothing valid is ever appended past a torn
 * commit — so quarantining preserves the torn-tail rule exactly.
 */
struct QuarantinedSegment
{
    PmOff pos = kPmNull;        ///< segment start in the log area
    std::uint32_t sizeBytes = 0;///< size claimed by its header
    PmOff block = kPmNull;      ///< block containing the segment
};

/** Structural result of a chain walk, used to re-adopt a log. */
struct WalkResult
{
    WalkEnd end = WalkEnd::CleanTail;
    /** Every block reached by following next pointers, in order. */
    std::vector<PmOff> blocks;
    /** Absolute position right after the last valid segment. */
    PmOff tailPos = kPmNull;
    /** Block containing tailPos (the last visited block). */
    PmOff tailBlock = kPmNull;
    /** Interior CRC failures skipped as media corruption. */
    std::vector<QuarantinedSegment> quarantined;
};

/**
 * Walk one thread's block chain from @p head_block, invoking
 * @p visit for every checksum-valid segment in chronological order.
 * Stops at the first torn record (there cannot be fresh records
 * beyond it — Section 4.1) — unless the failing record is followed by
 * a checksum-valid segment, in which case it is quarantined (see
 * QuarantinedSegment), @p on_quarantine fires, and the walk continues.
 */
WalkResult walkChain(
    const pmem::PmemDevice &dev, PmOff head_block,
    const std::function<void(const DecodedSegment &)> &visit,
    const std::function<void(const QuarantinedSegment &)> &on_quarantine =
        {});

/**
 * Walk the segments of a single block (no chain following); used by
 * the reclaimer, which freezes an explicit block list.
 */
void walkBlock(const pmem::PmemDevice &dev, PmOff block,
               const std::function<void(const DecodedSegment &)> &visit);

} // namespace specpmt::core

#endif // SPECPMT_CORE_SPLOG_FORMAT_HH
