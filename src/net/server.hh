/**
 * @file
 * The networked KV front end: a non-blocking epoll server with one
 * event loop pinned per KV shard.
 *
 * Threading model. Loop i owns shard i: it is the only network
 * thread that begins transactions on that shard (client thread id =
 * loop index), so a request that arrives on a connection bound to
 * its key's shard is parsed, executed, and answered on one thread
 * with no cross-thread handoff. Connections are distributed
 * round-robin at accept time; a HELLO frame carrying a desired shard
 * migrates the connection (decoder buffer and all) to that shard's
 * loop, so shard-affine clients pay the handoff once per connection
 * instead of once per request. Loop 0 additionally owns the listen
 * socket.
 *
 * Group commit. Each epoll wake-up drains every readable connection
 * completely, decoding all pipelined frames, then executes the
 * drained operations in arrival order as maximal same-shard runs via
 * KvService::executeShardBatch — ONE crash-atomic transaction (one
 * commit flush+fence) per run, however many pipelined mutations it
 * carries. Responses are appended per connection and written out in
 * a single batch after the run's commit fence, so a response is
 * never on the wire before its mutation is durable. Misrouted keys
 * (a client that ignored shard affinity) split the run: still
 * correct, just more fences — the specpmt_net_batch_* counters make
 * the difference visible.
 *
 * Epoch group commit (ServerConfig::groupCommit, DESIGN §12) goes one
 * step further: relaxed runs commit with Durability::Relaxed — no
 * per-run fence at all — and their responses are parked in
 * per-connection deferred chunks keyed by (shard, epoch ticket). The
 * loop seals a shard's epoch once epochMaxOps deferred mutations
 * accumulate, or after epochMaxDelayUs via a finite epoll timeout,
 * and a chunk is released to the socket only when its shard's sealed
 * epoch reaches its ticket — acks still never precede durability,
 * they just share one fence per epoch. Chunks drain in FIFO order
 * per connection, so pipelined response order is preserved; a
 * request carrying kFlagStrict splits the run and commits strictly
 * (one fence, acked immediately), which also seals every earlier
 * relaxed commit of that shard's epoch.
 *
 * Protocol errors (FrameDecoder poisoning, malformed payloads) close
 * the connection after a best-effort Err frame; the server never
 * guesses at resynchronization.
 */

#ifndef SPECPMT_NET_SERVER_HH
#define SPECPMT_NET_SERVER_HH

#include <atomic>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "kv/kv_service.hh"
#include "net/protocol.hh"
#include "obs/telemetry_server.hh"

namespace specpmt::obs
{
class Counter;
class Gauge;
} // namespace specpmt::obs

namespace specpmt::net
{

/** Server construction parameters. */
struct ServerConfig
{
    /** TCP port; 0 picks an ephemeral port (read it via port()). */
    std::uint16_t port = 0;
    /** Bind address. */
    std::string bindAddress = "127.0.0.1";
    /** listen(2) backlog. */
    int backlog = 128;
    /**
     * Mutations executed per shard transaction are capped so one
     * greedy pipeline cannot grow a transaction without bound; a
     * longer run simply commits in ceil(N/cap) fences.
     */
    std::size_t maxOpsPerCommit = 256;
    /**
     * Serve with epoch group commit: mutation runs without
     * kFlagStrict commit relaxed and are acked after their epoch's
     * shared fence. Requires a group-commit-capable service runtime
     * (otherwise runs keep committing strictly).
     */
    bool groupCommit = false;
    /** Seal a shard's epoch once this many deferred mutations wait. */
    std::size_t epochMaxOps = 64;
    /** Upper bound on how long an ack may wait for an epoch seal. */
    std::uint64_t epochMaxDelayUs = 500;
    /**
     * Tail sampling: a request whose decode-to-ack time exceeds this
     * many microseconds bumps specpmt_net_slow_requests_total and
     * (when tracing is enabled) emits a full-span trace event tagged
     * with the request id. 0 disables the check.
     */
    std::uint64_t slowUs = 0;
    /**
     * A loop whose heartbeat is older than this is reported dead by
     * healthReport() (the /healthz contract).
     */
    std::uint64_t stallThresholdMs = 1000;
    /**
     * Admission control: once a wake-up has drained this many
     * operations, further request frames are answered with Busy
     * instead of being queued — a bounded-queue shed that keeps the
     * loop's drain cycle (and thus every ack latency) bounded under
     * overload. Busy is retryable; well-behaved clients back off.
     */
    std::size_t maxPendingOps = 4096;
    /**
     * Data-plane idle timeout in milliseconds: a connection that
     * neither sends a byte nor has bytes in flight for this long is
     * evicted (specpmt_net_evicted_total{reason="idle"}). 0 disables
     * the sweep (default: the benchmark harness keeps long-lived
     * idle-ish connections).
     */
    std::uint64_t idleTimeoutMs = 0;
    /**
     * Per-frame length cap handed to each connection's decoder;
     * frames above it are protocol errors counted as
     * evicted{reason="oversize"}. Clamped to kMaxFrameBytes.
     */
    std::size_t maxFrameBytes = kMaxFrameBytes;
};

/**
 * The server; see file comment. One instance serves one KvService.
 * start()/stop() are not thread-safe against each other; everything
 * in between runs on the internal loop threads.
 */
class NetServer
{
  public:
    /**
     * @p service must outlive the server and have config().threads >=
     * its shard count (loop i uses client thread id i).
     */
    NetServer(kv::KvService &service, const ServerConfig &config);
    ~NetServer();

    NetServer(const NetServer &) = delete;
    NetServer &operator=(const NetServer &) = delete;

    /** Bind, listen, and spawn the per-shard loops. Throws on error. */
    void start();

    /**
     * Close the listener, wake every loop, join the threads, and
     * close all connections. In-flight unacked requests are dropped
     * — exactly what a crash does to them. Idempotent.
     */
    void stop();

    /** The bound TCP port (valid after start()). */
    std::uint16_t port() const { return port_; }

    /** True between start() and stop(). */
    bool running() const { return running_.load(); }

    /**
     * Per-loop liveness for /healthz: heartbeat age of every event
     * loop (a loop beats once per epoll wake-up, and wake-ups are
     * bounded by the heartbeat tick) plus the loop's shard seal lag.
     * Safe to call from any thread, including while stop() runs —
     * returns empty once the loops are gone.
     */
    std::vector<obs::ShardHealth> healthReport() const;

    /**
     * Test hook: make loop @p index sleep @p ms milliseconds inside
     * its event loop on its next wake-up, so its heartbeat goes stale
     * and healthReport()//healthz flips to dead. One-shot.
     */
    void debugWedgeLoop(unsigned index, std::uint64_t ms);

  private:
    /**
     * Responses waiting for an epoch seal, in pipeline order. A chunk
     * may hit the socket once its shard's sealed epoch reaches
     * `ticket` (0 = releasable, merely queued behind earlier chunks).
     */
    struct DeferredChunk
    {
        unsigned shard = 0;
        std::uint64_t ticket = 0;
        std::vector<std::uint8_t> bytes;
        /** When the chunk's run finished executing (seal_wait base). */
        std::uint64_t execEndNs = 0;
        /** Earliest decode stamp of the chunk's requests. */
        std::uint64_t firstDecodedNs = 0;
        /** Representative request id for tail-sampled traces. */
        std::uint64_t repId = 0;
        /** Responses parked behind the ticket (seal_wait samples). */
        std::uint32_t sealOps = 0;
        /** Response frames in the chunk (write-stage samples). */
        std::uint32_t frames = 0;
        /** First traced member's trace id (0 = untraced chunk). */
        std::uint64_t traceId = 0;
        /** That member asked for full span sampling. */
        bool traceSampled = false;
    };

    /**
     * Write-stage bookkeeping: response bytes entered `out` up to
     * endOffset at enqueueNs; when outPos crosses endOffset those
     * frames are on the wire and the write stage closes.
     */
    struct OutMarker
    {
        std::size_t endOffset = 0;
        std::uint64_t enqueueNs = 0;
        std::uint32_t frames = 0;
        /** First traced response's trace id (write-stage exemplar). */
        std::uint64_t traceId = 0;
        /** That response's request asked for span sampling. */
        bool traceSampled = false;
    };

    struct Conn
    {
        int fd = -1;
        FrameDecoder decoder;
        /** Encoded-but-unsent response bytes. */
        std::vector<std::uint8_t> out;
        std::size_t outPos = 0;
        /** FIFO of epoch-deferred response chunks (group commit). */
        std::deque<DeferredChunk> deferred;
        /** Write-stage markers over `out`, ascending endOffset. */
        std::deque<OutMarker> markers;
        /** Currently registered for EPOLLOUT. */
        bool wantWrite = false;
        /** Connection is dead this cycle; drop its pending ops. */
        bool closing = false;
        /** A frame has been decoded (Hello must be the first). */
        bool sawFrame = false;
        /** Loop to migrate to after this cycle (-1 = stay). */
        int migrateTo = -1;
        /** Steady ns of the last byte received (idle-timeout base). */
        std::uint64_t lastActivityNs = 0;
    };

    struct Loop
    {
        unsigned index = 0;
        int epollFd = -1;
        int wakeFd = -1; ///< eventfd: mailbox and stop notifications
        std::thread thread;
        std::mutex mailboxMutex;
        std::vector<std::unique_ptr<Conn>> mailbox;
        std::unordered_map<int, std::unique_ptr<Conn>> conns;
        /** Per-shard relaxed mutations deferred since the last seal
         * this loop initiated (the epochMaxOps trigger). */
        std::vector<std::uint64_t> epochOps;
        /** Steady-clock ns of the last event-loop iteration. */
        std::atomic<std::uint64_t> lastBeatNs{0};
        /** One-shot stall injection in ms (debugWedgeLoop). */
        std::atomic<std::uint64_t> wedgeMs{0};
    };

    /** One decoded request waiting for the drain-cycle execution. */
    struct PendingOp
    {
        Conn *conn = nullptr;
        std::uint64_t id = 0;
        /** Shard the op executes on. */
        unsigned shard = 0;
        kv::BatchOp op;
        /** Batch frames ack once: only the last entry responds. */
        bool respond = true;
        /** This op's whole frame was a Batch member. */
        bool fromBatch = false;
        /** Request carried kFlagStrict: commit outside the epoch. */
        bool strict = false;
        /** Epoch ticket the op's run joined (0 = already durable). */
        std::uint64_t ticket = 0;
        /** When the request frame was decoded (stage_queue base). */
        std::uint64_t decodedNs = 0;
        /** When the op's run finished executing (stage_exec end). */
        std::uint64_t execEndNs = 0;
        /** Wire trace extension: correlation id (0 = untraced). */
        std::uint64_t traceId = 0;
        /** The client asked for full span sampling of this request. */
        bool traceSampled = false;
        /** How the op's run ended: 0 ok, 1 media-fault abort (Io),
         * 2 shard read-only (run rejected before execution). */
        std::uint8_t runStatus = 0;
    };

    void loopMain(Loop &loop);
    void acceptReady(Loop &loop);
    /** Read+decode; true to keep the connection. */
    bool connReadable(Loop &loop, Conn &conn,
                      std::vector<PendingOp> &pending);
    /** Decode one request frame into pending ops / inline replies. */
    bool handleFrame(Loop &loop, Conn &conn, const Frame &frame,
                     std::vector<PendingOp> &pending);
    /** Execute the wake-up's drained ops as same-shard runs. */
    void executePending(Loop &loop, std::vector<PendingOp> &pending);
    /** Move releasable deferred chunks onto the connection's out. */
    void releaseDeferred(Conn &conn);
    /** Seal every shard this loop's connections are waiting on. */
    void sealOverdueEpochs(Loop &loop);
    void flushConn(Loop &loop, Conn &conn);
    void closeConn(Loop &loop, Conn &conn);
    void adoptConn(Loop &loop, std::unique_ptr<Conn> conn);
    void mailConn(unsigned target, std::unique_ptr<Conn> conn);
    void updateEpoll(Loop &loop, Conn &conn);

    kv::KvService &service_;
    ServerConfig config_;
    /** groupCommit requested AND the service runtime supports it. */
    bool epochMode_ = false;
    /** Cached per-shard instruments (`{shard=}`-labeled). */
    std::vector<obs::Counter *> shardOps_;
    std::vector<obs::Gauge *> queueDepth_;
    /** Guards loops_ against healthReport() racing start()/stop(). */
    mutable std::mutex lifecycleMutex_;
    std::vector<std::unique_ptr<Loop>> loops_;
    int listenFd_ = -1;
    std::uint16_t port_ = 0;
    std::atomic<bool> running_{false};
    std::atomic<bool> stopping_{false};
    std::atomic<unsigned> nextLoop_{0};
};

} // namespace specpmt::net

#endif // SPECPMT_NET_SERVER_HH
