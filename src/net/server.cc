#include "net/server.hh"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <stdexcept>
#include <thread>

#include "common/logging.hh"
#include "obs/metrics.hh"
#include "obs/trace.hh"
#include "obs/trace_context.hh"

namespace specpmt::net
{

namespace
{

/** Net-layer counters, registered once per process. */
struct NetMetrics
{
    obs::Counter &connections;
    obs::Counter &connsClosed;
    obs::Counter &framesRx;
    obs::Counter &framesTx;
    obs::Counter &bytesRx;
    obs::Counter &bytesTx;
    obs::Counter &protocolErrors;
    obs::Counter &batchCommits;
    obs::Counter &batchOps;
    obs::Counter &migrations;
    obs::Counter &deferredAcks;
    obs::Counter &epochSeals;
    obs::Counter &strictOps;
    obs::Counter &slowRequests;
    /** Requests shed with Busy by admission control. */
    obs::Counter &busyShed;
    /** Connections evicted by the idle-timeout sweep. */
    obs::Counter &evictedIdle;
    /** Connections evicted for breaching the frame-length cap. */
    obs::Counter &evictedOversize;
    obs::Histogram &pipelineDepth;
    /** Per-request stage attribution (ns): decode->execute wait,
     *  transaction execution, epoch-seal parking, socket write. */
    obs::Histogram &stageQueue;
    obs::Histogram &stageExec;
    obs::Histogram &stageSealWait;
    obs::Histogram &stageWrite;

    static NetMetrics &
    get()
    {
        auto &reg = obs::Registry::global();
        static NetMetrics m{
            reg.counter("specpmt_net_connections_total",
                        "accepted client connections"),
            reg.counter("specpmt_net_conns_closed_total",
                        "connections closed (EOF, error, shutdown)"),
            reg.counter("specpmt_net_frames_rx_total",
                        "request frames decoded"),
            reg.counter("specpmt_net_frames_tx_total",
                        "response frames encoded"),
            reg.counter("specpmt_net_bytes_rx_total",
                        "bytes read from client sockets"),
            reg.counter("specpmt_net_bytes_tx_total",
                        "bytes written to client sockets"),
            reg.counter("specpmt_net_protocol_errors_total",
                        "connections killed by protocol errors"),
            reg.counter(
                "specpmt_net_batch_commits_total",
                "shard transactions committed for drained batches"),
            reg.counter("specpmt_net_batch_ops_total",
                        "operations executed through drained batches"),
            reg.counter("specpmt_net_migrations_total",
                        "connections migrated to their HELLO shard"),
            reg.counter("specpmt_net_deferred_acks_total",
                        "responses parked until their epoch fence"),
            reg.counter("specpmt_net_epoch_seals_total",
                        "epoch seals initiated by the net layer "
                        "(size threshold or delay timer)"),
            reg.counter("specpmt_net_strict_ops_total",
                        "mutations that demanded strict durability "
                        "via kFlagStrict"),
            reg.counter("specpmt_net_slow_requests_total",
                        "requests slower than --slow-us end to end "
                        "(tail-sampled into the trace when enabled)"),
            reg.counter("specpmt_net_busy_total",
                        "requests shed with Busy by admission "
                        "control (bounded pending queue)"),
            reg.counter("specpmt_net_evicted_total",
                        "connections evicted by server policy",
                        obs::Labels{{"reason", "idle"}}),
            reg.counter("specpmt_net_evicted_total",
                        "connections evicted by server policy",
                        obs::Labels{{"reason", "oversize"}}),
            reg.histogram("specpmt_net_pipeline_depth",
                          "requests drained per connection per epoll "
                          "wake-up"),
            reg.histogram("specpmt_net_stage_queue",
                          "ns from request decode to the start of its "
                          "shard transaction"),
            reg.histogram("specpmt_net_stage_exec",
                          "ns a request's shard-batch transaction took "
                          "to execute (commit fence included)"),
            reg.histogram("specpmt_net_stage_seal_wait",
                          "ns a relaxed response waited parked for its "
                          "epoch seal"),
            reg.histogram("specpmt_net_stage_write",
                          "ns from response enqueue to the bytes being "
                          "handed to the socket"),
        };
        return m;
    }
};

void
throwErrno(const char *what)
{
    throw std::runtime_error(std::string(what) + ": " +
                             std::strerror(errno));
}

void
setNoDelay(int fd)
{
    int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
}

} // namespace

NetServer::NetServer(kv::KvService &service,
                     const ServerConfig &config)
    : service_(service), config_(config),
      epochMode_(config.groupCommit && service.groupCommitEnabled())
{
    // Loop i calls the service with client thread id i.
    SPECPMT_ASSERT(service.numThreads() >= service.numShards());
}

NetServer::~NetServer()
{
    stop();
}

void
NetServer::start()
{
    SPECPMT_ASSERT(!running_.load());
    stopping_.store(false);

    listenFd_ = ::socket(AF_INET,
                         SOCK_STREAM | SOCK_NONBLOCK | SOCK_CLOEXEC,
                         0);
    if (listenFd_ < 0)
        throwErrno("socket");
    int one = 1;
    ::setsockopt(listenFd_, SOL_SOCKET, SO_REUSEADDR, &one,
                 sizeof(one));

    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(config_.port);
    if (::inet_pton(AF_INET, config_.bindAddress.c_str(),
                    &addr.sin_addr) != 1)
        throw std::runtime_error("bad bind address " +
                                 config_.bindAddress);
    if (::bind(listenFd_, reinterpret_cast<sockaddr *>(&addr),
               sizeof(addr)) != 0)
        throwErrno("bind");
    if (::listen(listenFd_, config_.backlog) != 0)
        throwErrno("listen");
    socklen_t addr_len = sizeof(addr);
    if (::getsockname(listenFd_, reinterpret_cast<sockaddr *>(&addr),
                      &addr_len) != 0)
        throwErrno("getsockname");
    port_ = ntohs(addr.sin_port);

    const unsigned loops = service_.numShards();
    std::lock_guard<std::mutex> lifecycle(lifecycleMutex_);
    loops_.clear();
    shardOps_.clear();
    queueDepth_.clear();
    auto &reg = obs::Registry::global();
    for (unsigned i = 0; i < loops; ++i) {
        const obs::Labels labels{{"shard", std::to_string(i)}};
        shardOps_.push_back(&reg.counter(
            "specpmt_net_shard_ops_total",
            "operations executed per shard (load balance view)",
            labels));
        queueDepth_.push_back(&reg.gauge(
            "specpmt_net_queue_depth",
            "requests drained in the loop's most recent wake-up",
            labels));
    }
    for (unsigned i = 0; i < loops; ++i) {
        auto loop = std::make_unique<Loop>();
        loop->index = i;
        loop->lastBeatNs.store(obs::Tracer::now(),
                               std::memory_order_relaxed);
        loop->epochOps.assign(service_.numShards(), 0);
        loop->epollFd = ::epoll_create1(EPOLL_CLOEXEC);
        if (loop->epollFd < 0)
            throwErrno("epoll_create1");
        loop->wakeFd = ::eventfd(0, EFD_NONBLOCK | EFD_CLOEXEC);
        if (loop->wakeFd < 0)
            throwErrno("eventfd");
        epoll_event ev{};
        ev.events = EPOLLIN;
        ev.data.fd = loop->wakeFd;
        if (::epoll_ctl(loop->epollFd, EPOLL_CTL_ADD, loop->wakeFd,
                        &ev) != 0)
            throwErrno("epoll_ctl wakefd");
        loops_.push_back(std::move(loop));
    }
    // Loop 0 owns the listener.
    epoll_event ev{};
    ev.events = EPOLLIN;
    ev.data.fd = listenFd_;
    if (::epoll_ctl(loops_[0]->epollFd, EPOLL_CTL_ADD, listenFd_,
                    &ev) != 0)
        throwErrno("epoll_ctl listenfd");

    running_.store(true);
    for (auto &loop : loops_) {
        loop->thread =
            std::thread([this, raw = loop.get()] { loopMain(*raw); });
    }
    SPECPMT_INFORM("net: serving on %s:%u with %u shard loops",
                config_.bindAddress.c_str(), port_, loops);
}

void
NetServer::stop()
{
    if (!running_.load())
        return;
    std::lock_guard<std::mutex> lifecycle(lifecycleMutex_);
    stopping_.store(true);
    for (auto &loop : loops_) {
        const std::uint64_t one = 1;
        [[maybe_unused]] const auto n =
            ::write(loop->wakeFd, &one, sizeof(one));
    }
    for (auto &loop : loops_) {
        if (loop->thread.joinable())
            loop->thread.join();
    }
    // A migration can land in a mailbox after its target loop already
    // tore down; with every sender joined, sweep the leftovers.
    for (auto &loop : loops_) {
        std::lock_guard<std::mutex> guard(loop->mailboxMutex);
        for (auto &conn : loop->mailbox)
            ::close(conn->fd);
        loop->mailbox.clear();
    }
    loops_.clear();
    if (listenFd_ >= 0) {
        ::close(listenFd_);
        listenFd_ = -1;
    }
    running_.store(false);
}

void
NetServer::adoptConn(Loop &loop, std::unique_ptr<Conn> conn)
{
    Conn &ref = *conn;
    ref.migrateTo = -1;
    epoll_event ev{};
    ev.events = EPOLLIN | (ref.wantWrite ? EPOLLOUT : 0u);
    ev.data.fd = ref.fd;
    if (::epoll_ctl(loop.epollFd, EPOLL_CTL_ADD, ref.fd, &ev) != 0) {
        ::close(ref.fd);
        NetMetrics::get().connsClosed.add();
        return;
    }
    loop.conns.emplace(ref.fd, std::move(conn));
}

void
NetServer::mailConn(unsigned target, std::unique_ptr<Conn> conn)
{
    Loop &loop = *loops_[target];
    {
        std::lock_guard<std::mutex> guard(loop.mailboxMutex);
        loop.mailbox.push_back(std::move(conn));
    }
    const std::uint64_t one = 1;
    [[maybe_unused]] const auto n =
        ::write(loop.wakeFd, &one, sizeof(one));
}

void
NetServer::updateEpoll(Loop &loop, Conn &conn)
{
    epoll_event ev{};
    ev.events = EPOLLIN | (conn.wantWrite ? EPOLLOUT : 0u);
    ev.data.fd = conn.fd;
    ::epoll_ctl(loop.epollFd, EPOLL_CTL_MOD, conn.fd, &ev);
}

void
NetServer::closeConn(Loop &loop, Conn &conn)
{
    ::epoll_ctl(loop.epollFd, EPOLL_CTL_DEL, conn.fd, nullptr);
    ::close(conn.fd);
    NetMetrics::get().connsClosed.add();
    loop.conns.erase(conn.fd); // frees conn
}

void
NetServer::acceptReady(Loop &loop)
{
    for (;;) {
        const int fd = ::accept4(listenFd_, nullptr, nullptr,
                                 SOCK_NONBLOCK | SOCK_CLOEXEC);
        if (fd < 0) {
            if (errno == EAGAIN || errno == EWOULDBLOCK ||
                errno == ECONNABORTED)
                return;
            if (errno == EINTR)
                continue;
            return; // listener is going away
        }
        setNoDelay(fd);
        NetMetrics::get().connections.add();
        auto conn = std::make_unique<Conn>();
        conn->fd = fd;
        conn->decoder.setMaxFrameBytes(config_.maxFrameBytes);
        conn->lastActivityNs = obs::Tracer::now();
        const unsigned target =
            nextLoop_.fetch_add(1, std::memory_order_relaxed) %
            loops_.size();
        if (target == loop.index)
            adoptConn(loop, std::move(conn));
        else
            mailConn(target, std::move(conn));
    }
}

bool
NetServer::handleFrame(Loop &loop, Conn &conn, const Frame &frame,
                       std::vector<PendingOp> &pending)
{
    auto &metrics = NetMetrics::get();
    metrics.framesRx.add();
    const std::uint64_t decodedNs = obs::Tracer::now();

    // kFlagStrict is meaningful on mutating requests only; the trace
    // extension may ride any request; every other flag bit is
    // reserved and fails closed.
    const std::uint8_t allowed_flags =
        kFlagTraced |
        ((frame.op == Op::Put || frame.op == Op::Del ||
          frame.op == Op::Batch)
             ? kFlagStrict
             : 0);
    if (!isRequestOp(static_cast<std::uint8_t>(frame.op)) ||
        (frame.flags & ~allowed_flags) != 0) {
        appendErr(conn.out, frame.id, ErrCode::BadFrame,
                  "not a request frame");
        metrics.framesTx.add();
        metrics.protocolErrors.add();
        return false;
    }
    const bool strict = (frame.flags & kFlagStrict) != 0;
    if (strict)
        metrics.strictOps.add();

    // Admission control: once this wake-up's drain has queued
    // maxPendingOps operations, further requests are shed with Busy
    // — nothing executes, the client retries after backoff. Hello is
    // exempt (no work queued, and shedding it would orphan the
    // connection's shard binding). A Batch admitted here may overshoot
    // the cap by its member count; the next frame is shed, so the
    // overshoot is bounded by kMaxBatchEntries.
    if (frame.op != Op::Hello && config_.maxPendingOps != 0 &&
        pending.size() >= config_.maxPendingOps) {
        conn.sawFrame = true;
        appendBusy(conn.out, frame.id);
        metrics.framesTx.add();
        metrics.busyShed.add();
        return true;
    }

    switch (frame.op) {
      case Op::Hello: {
        std::uint32_t desired = kAnyShard;
        if (conn.sawFrame || !parseHello(frame, desired)) {
            appendErr(conn.out, frame.id, ErrCode::BadFrame,
                      "HELLO must be the first frame");
            metrics.framesTx.add();
            metrics.protocolErrors.add();
            return false;
        }
        conn.sawFrame = true;
        const unsigned shards = service_.numShards();
        std::uint32_t bound = loop.index;
        if (desired != kAnyShard && desired < shards &&
            desired != loop.index) {
            bound = desired;
            conn.migrateTo = static_cast<int>(desired);
        }
        appendHelloOk(conn.out, frame.id, shards, bound);
        metrics.framesTx.add();
        return true;
      }
      case Op::Get:
      case Op::Del: {
        kv::KvKey key = 0;
        if (!parseKey(frame, key)) {
            appendErr(conn.out, frame.id, ErrCode::BadFrame,
                      "bad key payload");
            metrics.framesTx.add();
            metrics.protocolErrors.add();
            return false;
        }
        conn.sawFrame = true;
        PendingOp op;
        op.conn = &conn;
        op.id = frame.id;
        op.shard = service_.shardOf(key);
        op.op.kind = frame.op == Op::Get ? kv::BatchOp::Kind::Get
                                         : kv::BatchOp::Kind::Erase;
        op.op.key = key;
        op.strict = strict;
        op.decodedNs = decodedNs;
        op.traceId = frame.ext.traceId;
        op.traceSampled = frame.ext.sampled;
        pending.push_back(op);
        return true;
      }
      case Op::Put: {
        PendingOp op;
        op.conn = &conn;
        op.id = frame.id;
        op.op.kind = kv::BatchOp::Kind::Put;
        if (!parsePut(frame, op.op.key, op.op.value)) {
            appendErr(conn.out, frame.id, ErrCode::BadFrame,
                      "bad put payload");
            metrics.framesTx.add();
            metrics.protocolErrors.add();
            return false;
        }
        conn.sawFrame = true;
        op.shard = service_.shardOf(op.op.key);
        op.strict = strict;
        op.decodedNs = decodedNs;
        op.traceId = frame.ext.traceId;
        op.traceSampled = frame.ext.sampled;
        pending.push_back(op);
        return true;
      }
      case Op::Batch: {
        std::vector<std::pair<kv::KvKey, kv::KvValue>> items;
        if (!parseBatch(frame, items) || items.empty()) {
            appendErr(conn.out, frame.id, ErrCode::BadFrame,
                      "bad batch payload");
            metrics.framesTx.add();
            metrics.protocolErrors.add();
            return false;
        }
        conn.sawFrame = true;
        for (std::size_t i = 0; i < items.size(); ++i) {
            PendingOp op;
            op.conn = &conn;
            op.id = frame.id;
            op.shard = service_.shardOf(items[i].first);
            op.op.kind = kv::BatchOp::Kind::Put;
            op.op.key = items[i].first;
            op.op.value = items[i].second;
            op.fromBatch = true;
            op.respond = i + 1 == items.size();
            op.strict = strict;
            op.decodedNs = decodedNs;
            op.traceId = frame.ext.traceId;
            op.traceSampled = frame.ext.sampled;
            pending.push_back(op);
        }
        return true;
      }
      default:
        break;
    }
    appendErr(conn.out, frame.id, ErrCode::BadFrame,
              "unhandled opcode");
    metrics.framesTx.add();
    metrics.protocolErrors.add();
    return false;
}

bool
NetServer::connReadable(Loop &loop, Conn &conn,
                        std::vector<PendingOp> &pending)
{
    auto &metrics = NetMetrics::get();
    std::uint8_t buf[64 * 1024];
    bool eof = false;
    for (;;) {
        const ssize_t n = ::recv(conn.fd, buf, sizeof(buf), 0);
        if (n > 0) {
            metrics.bytesRx.add(static_cast<std::uint64_t>(n));
            conn.lastActivityNs = obs::Tracer::now();
            conn.decoder.feed(buf, static_cast<std::size_t>(n));
            if (static_cast<std::size_t>(n) < sizeof(buf))
                break;
            continue;
        }
        if (n == 0) {
            eof = true;
            break;
        }
        if (errno == EAGAIN || errno == EWOULDBLOCK)
            break;
        if (errno == EINTR)
            continue;
        eof = true; // hard socket error
        break;
    }

    const std::size_t before = pending.size();
    Frame frame;
    std::string error;
    bool protocol_ok = true;
    for (;;) {
        const auto status = conn.decoder.next(frame, error);
        if (status == FrameDecoder::Status::NeedMore)
            break;
        if (status == FrameDecoder::Status::Error) {
            if (!conn.closing) {
                SPECPMT_INFORM("net: closing fd %d: %s", conn.fd,
                            error.c_str());
                appendErr(conn.out, 0, ErrCode::BadFrame, error);
                metrics.framesTx.add();
                metrics.protocolErrors.add();
                if (conn.decoder.oversized())
                    metrics.evictedOversize.add();
            }
            protocol_ok = false;
            break;
        }
        if (!handleFrame(loop, conn, frame, pending)) {
            protocol_ok = false;
            break;
        }
    }
    if (pending.size() > before) {
        metrics.pipelineDepth.record(
            static_cast<std::uint64_t>(pending.size() - before));
    }
    if (!protocol_ok || eof) {
        conn.closing = true;
        return false;
    }
    return true;
}

void
NetServer::executePending(Loop &loop, std::vector<PendingOp> &pending)
{
    if (pending.empty())
        return;
    SPECPMT_TRACE_SPAN("net_execute_batch", "net");
    auto &metrics = NetMetrics::get();
    if (loop.index < queueDepth_.size())
        queueDepth_[loop.index]->set(
            static_cast<std::int64_t>(pending.size()));

    // Execute maximal same-shard, same-durability runs in arrival
    // order; each run with a mutation is one crash-atomic
    // transaction. Strict runs pay their own commit fence; relaxed
    // runs (epoch mode) defer it into the shard's epoch and remember
    // the ticket their responses must wait for.
    std::vector<kv::BatchOp> ops;
    std::vector<kv::BatchOpResult> results;
    std::vector<kv::BatchOpResult> all_results(pending.size());
    std::size_t start = 0;
    while (start < pending.size()) {
        // Drop ops whose connection died mid-cycle: nothing was
        // acked, so skipping them is indistinguishable from a crash
        // before the request was executed.
        if (pending[start].conn->closing) {
            ++start;
            continue;
        }
        const unsigned shard = pending[start].shard;
        const bool strict = !epochMode_ || pending[start].strict;
        std::size_t end = start;
        std::size_t mutations = 0;
        // The run's trace identity: the first sampled member wins
        // (so a sampled request's waterfall is complete), else the
        // first traced member (exemplars only).
        std::uint64_t runTraceId = 0;
        bool runSampled = false;
        ops.clear();
        while (end < pending.size() &&
               ops.size() < config_.maxOpsPerCommit &&
               !pending[end].conn->closing &&
               pending[end].shard == shard &&
               (!epochMode_ || pending[end].strict ==
                                   pending[start].strict)) {
            if (pending[end].op.kind != kv::BatchOp::Kind::Get)
                ++mutations;
            if (pending[end].traceId != 0 &&
                (runTraceId == 0 ||
                 (!runSampled && pending[end].traceSampled))) {
                runTraceId = pending[end].traceId;
                runSampled = pending[end].traceSampled;
            }
            ops.push_back(pending[end].op);
            ++end;
        }
        std::uint64_t ticket = 0;
        const std::uint64_t execStartNs = obs::Tracer::now();
        const obs::PmCost costBefore = obs::traceContext().cost;
        kv::BatchStatus status = kv::BatchStatus::Ok;
        {
            // The context rides this thread into KvService and the
            // tx runtime: log appends and device flushes charge
            // their PM costs here, and sampled commits correlate
            // their spans (flush_batch, epoch_seal) by this id.
            obs::ScopedTraceId traceScope(runTraceId, runSampled);
            status = service_.executeShardBatch(
                loop.index, shard, ops, results,
                strict ? kv::Durability::Strict
                       : kv::Durability::Relaxed,
                &ticket);
        }
        const std::uint64_t execEndNs = obs::Tracer::now();
        // BadRoute would mean this loop computed the wrong shard for
        // a key — a server bug, not a client or media condition.
        SPECPMT_ASSERT(status != kv::BatchStatus::BadRoute);
        const std::uint8_t runStatus =
            status == kv::BatchStatus::Io        ? 1
            : status == kv::BatchStatus::ReadOnly ? 2
                                                  : 0;
        metrics.batchCommits.add();
        metrics.batchOps.add(ops.size());
        if (shard < shardOps_.size())
            shardOps_[shard]->add(ops.size());
        if (runSampled && obs::Tracer::global().enabled()) {
            const obs::PmCost cost = obs::PmCost::delta(
                costBefore, obs::traceContext().cost);
            const obs::TraceArg args[] = {
                {"user_bytes", cost.userBytes},
                {"log_bytes", cost.logBytes},
                {"flushes", cost.flushes},
                {"flush_bytes", cost.flushBytes},
                {"fences", cost.fences},
                {"log_peak", cost.logBytesPeak},
                {"reclaim_debt", cost.reclaimDebt},
            };
            obs::Tracer::global().record(
                "srv_exec", "req", execStartNs, execEndNs, runTraceId,
                args, sizeof(args) / sizeof(args[0]));
        }
        // Every request of the run shares the run's execution time —
        // that is what each of them actually waited for. Traced
        // requests also pin their ids onto the stage buckets they
        // land in, so a live scrape links tail buckets to traces.
        const std::uint64_t execNs = execEndNs - execStartNs;
        for (std::size_t i = 0; i < results.size(); ++i) {
            all_results[start + i] = results[i];
            PendingOp &done = pending[start + i];
            done.ticket = ticket;
            done.execEndNs = execEndNs;
            done.runStatus = runStatus;
            const std::uint64_t queueNs =
                execStartNs > done.decodedNs
                    ? execStartNs - done.decodedNs
                    : 0;
            metrics.stageQueue.record(queueNs, done.traceId);
            metrics.stageExec.record(execNs, done.traceId);
            if (done.traceSampled && obs::Tracer::global().enabled())
                obs::Tracer::global().record("srv_queue", "req",
                                             done.decodedNs,
                                             execStartNs,
                                             done.traceId);
        }
        if (ticket != 0)
            loop.epochOps[shard] += mutations;
        start = end;
    }

    // Responses, in arrival order. Strict and read-only responses go
    // straight to the connection's out buffer (their fences are
    // done); responses of a relaxed run are parked in a deferred
    // chunk keyed by the run's (shard, ticket) until the epoch seal.
    // Once a connection has deferred chunks, later responses queue
    // behind them so pipelined response order is preserved.
    const std::uint64_t respNs = obs::Tracer::now();
    auto sink = [&](const PendingOp &op) -> std::vector<std::uint8_t> & {
        Conn &conn = *op.conn;
        if (op.ticket == 0 && conn.deferred.empty())
            return conn.out;
        if (!conn.deferred.empty() &&
            (op.ticket == 0 ||
             (conn.deferred.back().shard == op.shard &&
              conn.deferred.back().ticket == op.ticket))) {
            return conn.deferred.back().bytes;
        }
        conn.deferred.push_back({op.shard, op.ticket, {}});
        return conn.deferred.back().bytes;
    };
    // Stage bookkeeping per response frame: immediate responses open
    // a write marker on the connection's out buffer (and are checked
    // against --slow-us now); deferred responses annotate their chunk
    // so releaseDeferred() can attribute seal_wait/write/slow later.
    auto noteResponse = [&](const PendingOp &op,
                            std::vector<std::uint8_t> &out) {
        Conn &conn = *op.conn;
        if (&out == &conn.out) {
            if (!conn.markers.empty() &&
                conn.markers.back().enqueueNs == respNs) {
                conn.markers.back().endOffset = conn.out.size();
                ++conn.markers.back().frames;
                if (conn.markers.back().traceId == 0) {
                    conn.markers.back().traceId = op.traceId;
                    conn.markers.back().traceSampled = op.traceSampled;
                }
            } else {
                conn.markers.push_back({conn.out.size(), respNs, 1,
                                        op.traceId, op.traceSampled});
            }
            if (config_.slowUs != 0 &&
                respNs - op.decodedNs > config_.slowUs * 1000) {
                metrics.slowRequests.add();
                if (obs::Tracer::global().enabled())
                    obs::Tracer::global().record("slow_request", "net",
                                                 op.decodedNs, respNs,
                                                 op.id);
            }
            return;
        }
        DeferredChunk &chunk = conn.deferred.back();
        ++chunk.frames;
        if (op.ticket != 0)
            ++chunk.sealOps;
        if (chunk.firstDecodedNs == 0 ||
            op.decodedNs < chunk.firstDecodedNs)
            chunk.firstDecodedNs = op.decodedNs;
        if (op.execEndNs > chunk.execEndNs)
            chunk.execEndNs = op.execEndNs;
        if (chunk.repId == 0)
            chunk.repId = op.id;
        if (chunk.traceId == 0) {
            chunk.traceId = op.traceId;
            chunk.traceSampled = op.traceSampled;
        }
    };
    bool batch_ok = true;
    ErrCode batch_err = ErrCode::MapFull;
    std::string_view batch_msg = "batch put rejected";
    for (std::size_t i = 0; i < pending.size(); ++i) {
        const PendingOp &op = pending[i];
        if (op.conn->closing)
            continue;
        const kv::BatchOpResult &result = all_results[i];
        if (op.ticket != 0 && (op.respond || !op.fromBatch))
            metrics.deferredAcks.add();
        if (op.fromBatch) {
            // First failure wins: the whole batch frame gets one
            // response, and the earliest cause is the honest one.
            if (batch_ok) {
                if (op.runStatus == 1) {
                    batch_ok = false;
                    batch_err = ErrCode::Io;
                    batch_msg = "media fault; batch aborted";
                } else if (op.runStatus == 2 ||
                           result.rejectedReadOnly) {
                    batch_ok = false;
                    batch_err = ErrCode::ReadOnly;
                    batch_msg = "shard is read-only";
                } else if (!result.ok) {
                    batch_ok = false;
                    batch_err = ErrCode::MapFull;
                    batch_msg = "batch put rejected";
                }
            }
            if (op.respond) {
                auto &out = sink(op);
                if (batch_ok)
                    appendOk(out, op.id);
                else
                    appendErr(out, op.id, batch_err, batch_msg);
                metrics.framesTx.add();
                noteResponse(op, out);
                batch_ok = true;
            }
            continue;
        }
        auto &out = sink(op);
        const bool is_get = op.op.kind == kv::BatchOp::Kind::Get;
        if (op.runStatus == 1) {
            // The run's transaction hit a media fault and was aborted
            // cleanly: nothing applied, nothing durable. Every member
            // reports Io — a retry may land on healthy lines.
            appendErr(out, op.id, ErrCode::Io,
                      "media fault; tx aborted");
        } else if (op.runStatus == 2) {
            // The shard flipped read-only mid-run. Mutations are
            // refused outright; a Get merely lost its ride (the run
            // aborted before execution) — Busy tells the client to
            // retry, and the retry is served from the read-only path.
            if (is_get)
                appendBusy(out, op.id);
            else
                appendErr(out, op.id, ErrCode::ReadOnly,
                          "shard is read-only");
        } else if (result.rejectedReadOnly) {
            appendErr(out, op.id, ErrCode::ReadOnly,
                      "shard is read-only");
        } else {
            switch (op.op.kind) {
              case kv::BatchOp::Kind::Get:
                if (result.ok)
                    appendValue(out, op.id, result.value);
                else
                    appendNotFound(out, op.id);
                break;
              case kv::BatchOp::Kind::Put:
                if (result.ok)
                    appendOk(out, op.id);
                else
                    appendErr(out, op.id, ErrCode::MapFull,
                              "shard table full");
                break;
              case kv::BatchOp::Kind::Erase:
                if (result.ok)
                    appendOk(out, op.id);
                else
                    appendNotFound(out, op.id);
                break;
            }
        }
        metrics.framesTx.add();
        noteResponse(op, out);
    }

    // Size trigger: seal any shard with enough deferred mutations.
    for (unsigned s = 0; s < loop.epochOps.size(); ++s) {
        if (loop.epochOps[s] >= config_.epochMaxOps) {
            service_.sealShardEpoch(s);
            loop.epochOps[s] = 0;
            metrics.epochSeals.add();
        }
    }
}

void
NetServer::releaseDeferred(Conn &conn)
{
    auto &metrics = NetMetrics::get();
    while (!conn.deferred.empty()) {
        const DeferredChunk &front = conn.deferred.front();
        if (front.ticket != 0 &&
            service_.shardSealedEpoch(front.shard) < front.ticket)
            return;
        const std::uint64_t nowNs = obs::Tracer::now();
        // seal_wait closes for every response that was parked behind
        // the ticket (responses merely queued for FIFO order carry
        // ticket 0 in their chunk and are not seal-attributed).
        if (front.sealOps != 0 && front.execEndNs != 0) {
            const std::uint64_t waitNs =
                nowNs > front.execEndNs ? nowNs - front.execEndNs : 0;
            for (std::uint32_t i = 0; i < front.sealOps; ++i)
                metrics.stageSealWait.record(waitNs, front.traceId);
            if (front.traceSampled && obs::Tracer::global().enabled())
                obs::Tracer::global().record("seal_wait", "req",
                                             front.execEndNs, nowNs,
                                             front.traceId);
        }
        conn.out.insert(conn.out.end(), front.bytes.begin(),
                        front.bytes.end());
        if (front.frames != 0)
            conn.markers.push_back({conn.out.size(), nowNs,
                                    front.frames, front.traceId,
                                    front.traceSampled});
        if (config_.slowUs != 0 && front.firstDecodedNs != 0 &&
            nowNs - front.firstDecodedNs > config_.slowUs * 1000) {
            metrics.slowRequests.add();
            if (obs::Tracer::global().enabled())
                obs::Tracer::global().record("slow_request", "net",
                                             front.firstDecodedNs,
                                             nowNs, front.repId);
        }
        conn.deferred.pop_front();
    }
}

void
NetServer::sealOverdueEpochs(Loop &loop)
{
    // Delay trigger: the epoll timeout expired with acks still
    // parked. Seal every shard a chunk is waiting on (sealing an
    // empty epoch is fence-free, so over-approximating is cheap).
    bool sealed_any = false;
    std::vector<bool> sealed(service_.numShards(), false);
    for (auto &[fd, conn] : loop.conns) {
        for (const DeferredChunk &chunk : conn->deferred) {
            if (chunk.ticket == 0 || sealed[chunk.shard])
                continue;
            if (service_.shardSealedEpoch(chunk.shard) >= chunk.ticket) {
                sealed[chunk.shard] = true; // another thread sealed it
                continue;
            }
            service_.sealShardEpoch(chunk.shard);
            sealed[chunk.shard] = true;
            sealed_any = true;
            if (chunk.shard < loop.epochOps.size())
                loop.epochOps[chunk.shard] = 0;
        }
    }
    if (sealed_any)
        NetMetrics::get().epochSeals.add();
}

void
NetServer::flushConn(Loop &loop, Conn &conn)
{
    auto &metrics = NetMetrics::get();
    // Close the write stage for every marker the kernel accepted.
    auto popMarkers = [&metrics](Conn &c) {
        if (c.markers.empty() ||
            c.markers.front().endOffset > c.outPos)
            return;
        const std::uint64_t nowNs = obs::Tracer::now();
        while (!c.markers.empty() &&
               c.markers.front().endOffset <= c.outPos) {
            const OutMarker &marker = c.markers.front();
            const std::uint64_t writeNs =
                nowNs > marker.enqueueNs ? nowNs - marker.enqueueNs
                                         : 0;
            for (std::uint32_t i = 0; i < marker.frames; ++i)
                metrics.stageWrite.record(writeNs, marker.traceId);
            if (marker.traceSampled &&
                obs::Tracer::global().enabled())
                obs::Tracer::global().record("ack_write", "req",
                                             marker.enqueueNs, nowNs,
                                             marker.traceId);
            c.markers.pop_front();
        }
    };
    while (conn.outPos < conn.out.size()) {
        const ssize_t n =
            ::send(conn.fd, conn.out.data() + conn.outPos,
                   conn.out.size() - conn.outPos, MSG_NOSIGNAL);
        if (n > 0) {
            metrics.bytesTx.add(static_cast<std::uint64_t>(n));
            conn.outPos += static_cast<std::size_t>(n);
            continue;
        }
        if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
            popMarkers(conn);
            if (!conn.wantWrite) {
                conn.wantWrite = true;
                updateEpoll(loop, conn);
            }
            return;
        }
        if (n < 0 && errno == EINTR)
            continue;
        conn.closing = true; // peer vanished
        return;
    }
    popMarkers(conn);
    conn.out.clear();
    conn.outPos = 0;
    conn.markers.clear();
    if (conn.wantWrite) {
        conn.wantWrite = false;
        updateEpoll(loop, conn);
    }
}

void
NetServer::loopMain(Loop &loop)
{
    constexpr int kMaxEvents = 128;
    /** Idle wake-up bound so the liveness heartbeat keeps beating. */
    constexpr int kHeartbeatTickMs = 200;
    epoll_event events[kMaxEvents];
    std::vector<PendingOp> pending;

    while (true) {
        loop.lastBeatNs.store(obs::Tracer::now(),
                              std::memory_order_relaxed);
        if (const std::uint64_t wedge =
                loop.wedgeMs.exchange(0, std::memory_order_relaxed))
            std::this_thread::sleep_for(
                std::chrono::milliseconds(wedge));
        // Never block longer than the heartbeat tick; tighter still
        // when acks are parked awaiting an epoch seal, so the delay
        // trigger fires on time.
        int timeout_ms = kHeartbeatTickMs;
        for (auto &[fd, conn] : loop.conns) {
            if (!conn->deferred.empty()) {
                timeout_ms = static_cast<int>(std::min<std::uint64_t>(
                    kHeartbeatTickMs,
                    std::max<std::uint64_t>(
                        1, config_.epochMaxDelayUs / 1000)));
                break;
            }
        }
        const int n = ::epoll_wait(loop.epollFd, events, kMaxEvents,
                                   timeout_ms);
        if (n < 0) {
            if (errno == EINTR)
                continue;
            break;
        }
        if (n == 0)
            sealOverdueEpochs(loop);
        pending.clear();
        bool stop_seen = false;
        for (int i = 0; i < n; ++i) {
            const int fd = events[i].data.fd;
            if (fd == loop.wakeFd) {
                std::uint64_t drain;
                while (::read(loop.wakeFd, &drain, sizeof(drain)) > 0)
                    ;
                if (stopping_.load())
                    stop_seen = true;
                std::vector<std::unique_ptr<Conn>> adopted;
                {
                    std::lock_guard<std::mutex> guard(
                        loop.mailboxMutex);
                    adopted.swap(loop.mailbox);
                }
                for (auto &conn : adopted)
                    adoptConn(loop, std::move(conn));
                continue;
            }
            if (fd == listenFd_ && loop.index == 0) {
                acceptReady(loop);
                continue;
            }
            const auto it = loop.conns.find(fd);
            if (it == loop.conns.end())
                continue;
            Conn &conn = *it->second;
            if (events[i].events & (EPOLLHUP | EPOLLERR)) {
                conn.closing = true;
                continue;
            }
            if (events[i].events & EPOLLIN)
                connReadable(loop, conn, pending);
            if ((events[i].events & EPOLLOUT) && !conn.closing)
                flushConn(loop, conn);
        }

        // The drain cycle: every decoded request of this wake-up is
        // executed now (group commit), then responses flush in one
        // batch per connection.
        executePending(loop, pending);
        std::vector<int> to_close;
        std::vector<int> to_migrate;
        const std::uint64_t sweepNs = obs::Tracer::now();
        for (auto &[fd, conn] : loop.conns) {
            releaseDeferred(*conn);
            if (!conn->out.empty() && !conn->wantWrite)
                flushConn(loop, *conn);
            // Idle-timeout sweep: only truly quiet connections — no
            // unsent response bytes, no acks parked for a seal — are
            // evicted, so a slow reader is a write stall, not "idle".
            if (config_.idleTimeoutMs != 0 && !conn->closing &&
                conn->out.empty() && conn->deferred.empty() &&
                conn->lastActivityNs != 0 &&
                sweepNs > conn->lastActivityNs &&
                sweepNs - conn->lastActivityNs >
                    config_.idleTimeoutMs * 1000000ull) {
                conn->closing = true;
                NetMetrics::get().evictedIdle.add();
            }
            if (conn->closing)
                to_close.push_back(fd);
            else if (conn->migrateTo >= 0)
                to_migrate.push_back(fd);
        }
        for (const int fd : to_close) {
            const auto it = loop.conns.find(fd);
            if (it != loop.conns.end())
                closeConn(loop, *it->second);
        }
        for (const int fd : to_migrate) {
            const auto it = loop.conns.find(fd);
            if (it == loop.conns.end())
                continue;
            std::unique_ptr<Conn> conn = std::move(it->second);
            loop.conns.erase(it);
            ::epoll_ctl(loop.epollFd, EPOLL_CTL_DEL, conn->fd,
                        nullptr);
            const unsigned target =
                static_cast<unsigned>(conn->migrateTo);
            NetMetrics::get().migrations.add();
            mailConn(target, std::move(conn));
        }
        if (stop_seen)
            break;
    }

    // Teardown: close every connection this loop still owns, plus
    // any late mailbox arrivals (stop() already joined the senders).
    std::vector<std::unique_ptr<Conn>> late;
    {
        std::lock_guard<std::mutex> guard(loop.mailboxMutex);
        late.swap(loop.mailbox);
    }
    for (auto &conn : late) {
        ::close(conn->fd);
        NetMetrics::get().connsClosed.add();
    }
    for (auto &[fd, conn] : loop.conns) {
        ::close(fd);
        NetMetrics::get().connsClosed.add();
    }
    loop.conns.clear();
    ::close(loop.epollFd);
    ::close(loop.wakeFd);
}

std::vector<obs::ShardHealth>
NetServer::healthReport() const
{
    std::vector<obs::ShardHealth> report;
    std::lock_guard<std::mutex> lifecycle(lifecycleMutex_);
    if (!running_.load())
        return report;
    const std::uint64_t nowNs = obs::Tracer::now();
    report.reserve(loops_.size());
    for (const auto &loop : loops_) {
        obs::ShardHealth health;
        health.shard = loop->index;
        const std::uint64_t beat =
            loop->lastBeatNs.load(std::memory_order_relaxed);
        health.heartbeatAgeUs =
            nowNs > beat ? (nowNs - beat) / 1000 : 0;
        health.sealLag = service_.shardEpochLag(loop->index);
        health.live =
            health.heartbeatAgeUs < config_.stallThresholdMs * 1000;
        health.readOnly = service_.shardReadOnly(loop->index);
        health.degraded = service_.shardDegraded(loop->index);
        health.quarantined = service_.shardQuarantined(loop->index);
        health.mediaAborts = service_.shardMediaAborts(loop->index);
        report.push_back(health);
    }
    return report;
}

void
NetServer::debugWedgeLoop(unsigned index, std::uint64_t ms)
{
    std::lock_guard<std::mutex> lifecycle(lifecycleMutex_);
    if (!running_.load() || index >= loops_.size())
        return;
    loops_[index]->wedgeMs.store(ms, std::memory_order_relaxed);
    const std::uint64_t one = 1;
    [[maybe_unused]] const auto n =
        ::write(loops_[index]->wakeFd, &one, sizeof(one));
}

} // namespace specpmt::net
