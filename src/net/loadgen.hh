/**
 * @file
 * Open-loop load generator for the networked KV front end.
 *
 * Closed-loop drivers (kv/driver) wait for each response before
 * issuing the next request, so a slow server *slows the clients
 * down* and the measured tail silently omits exactly the latencies a
 * real arrival stream would have suffered — coordinated omission.
 * This generator is open-loop: request departures are scheduled on a
 * target-QPS arrival timeline (fixed-rate or Poisson) fixed *before*
 * the run, requests are pipelined onto the connections when their
 * departure time arrives whether or not earlier responses came back,
 * and every latency is measured from the request's INTENDED departure
 * time, not from when the socket write happened to occur. A stall in
 * the server therefore shows up in the recorded tail for every
 * request scheduled during the stall, exactly as real clients would
 * experience it.
 *
 * The op mix/key distribution comes from kv/workload_spec — the same
 * generator the closed-loop driver consumes, so both load paths draw
 * identical distributions by construction.
 *
 * Routing is shard-affine: one connection per server shard (shard
 * count discovered via HELLO), each bound to its shard's event loop;
 * requests go to their key's shard connection so the server executes
 * them with no cross-thread handoff.
 */

#ifndef SPECPMT_NET_LOADGEN_HH
#define SPECPMT_NET_LOADGEN_HH

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "common/stats.hh"
#include "kv/workload_spec.hh"

namespace specpmt::net
{

/** Arrival processes for the departure timeline. */
enum class Arrival
{
    Fixed,   ///< deterministic 1/QPS gaps
    Poisson, ///< exponential gaps with mean 1/QPS
};

const char *arrivalName(Arrival arrival);

/** Load generator parameters. */
struct LoadgenConfig
{
    std::string host = "127.0.0.1";
    std::uint16_t port = 0;
    /** Target arrival rate, requests/second. */
    double targetQps = 20000;
    /** Length of the arrival timeline, seconds. */
    double seconds = 2.0;
    Arrival arrival = Arrival::Poisson;
    /** Mix / key distribution (shared with the closed-loop driver). */
    kv::WorkloadSpec workload;
    std::uint64_t seed = 1;
    /**
     * PUT keys 1..workload.keys (shard-grouped BATCH frames) before
     * the timed run, so GETs hit a loaded keyspace.
     */
    bool loadFirst = false;
    /** Items per load-phase BATCH frame. */
    std::size_t loadBatch = 64;
    /** Post-timeline grace period for straggler responses. */
    double drainSeconds = 10.0;
    /**
     * Fraction of mutation requests (PUT and BATCH frames) sent with
     * kFlagStrict, demanding a per-request commit fence even when the
     * server serves with epoch group commit. Drawn per request from
     * the run's seeded RNG, so a given seed marks the same requests
     * strict on every run.
     */
    double strictFraction = 0.0;
    /**
     * Fraction of timed-run requests sent with the wire trace
     * extension (kFlagTraced + sampled bit): each gets a fresh 64-bit
     * trace id, a client_send/client_rtt span pair (when the process
     * tracer is enabled), and seeds server-side span emission and
     * histogram exemplars for that request. Drawn from the run's
     * seeded RNG, so a given seed traces the same requests every run.
     * 0 disables the extension entirely — frames stay byte-identical
     * to the pre-extension protocol.
     */
    double traceSample = 0.0;
    /**
     * Per-request deadline in milliseconds measured from the socket
     * enqueue of each attempt. A request unanswered past it counts a
     * timeout and (attempts permitting) is retried; 0 disables
     * deadlines entirely — the legacy wait-forever behavior.
     */
    std::uint64_t requestTimeoutMs = 0;
    /**
     * Resend budget per request beyond the first attempt, spent on
     * timeouts and Busy (overload-shed) responses. Retries are
     * byte-identical resends under the SAME request id, and a write
     * is only resent while it is still the newest write of every key
     * it touches — an idempotent overwrite, never a rollback of a
     * newer acked PUT. 0 disables retries.
     */
    std::uint32_t maxRetries = 0;
    /**
     * Re-dial a dead connection (capped exponential backoff with
     * seeded jitter) instead of declaring the run over. Requests that
     * were in flight on the dead connection resolve via the deadline
     * path, so pair this with requestTimeoutMs.
     */
    bool reconnect = false;
    /** First retry/reconnect backoff step, milliseconds. */
    std::uint64_t backoffBaseMs = 10;
    /** Backoff ceiling, milliseconds. */
    std::uint64_t backoffMaxMs = 500;
};

/** Aggregated outcome of one open-loop run. */
struct LoadgenResult
{
    /** Departures on the arrival timeline. */
    std::uint64_t scheduled = 0;
    /** Requests actually written to a socket. */
    std::uint64_t sent = 0;
    /** Responses matched to requests. */
    std::uint64_t acked = 0;
    /** Err responses. */
    std::uint64_t errors = 0;
    /** Get misses (a loaded keyspace should have none). */
    std::uint64_t notFound = 0;
    /** Requests still unanswered when the run ended. */
    std::uint64_t lost = 0;
    /** Malformed response frames (fatal for the connection). */
    std::uint64_t protocolErrors = 0;
    /** Mutation requests sent with kFlagStrict. */
    std::uint64_t strictSent = 0;
    /** Requests sent with the trace extension (traceSample draws). */
    std::uint64_t tracedSent = 0;
    /** Attempts whose per-request deadline expired unanswered. */
    std::uint64_t timeouts = 0;
    /** Byte-identical resends (timeout or Busy, same request id). */
    std::uint64_t retries = 0;
    /** Successful re-dials of a dead connection. */
    std::uint64_t reconnects = 0;
    /** Busy (overload-shed) responses received. */
    std::uint64_t busyResponses = 0;
    /** A connection died mid-run (e.g. the server crashed). */
    bool connectionLost = false;
    /** Failed before any traffic (connect/handshake); see error. */
    bool aborted = false;
    std::string error;

    double wallSeconds = 0.0;
    /** acked / wallSeconds. */
    double achievedQps = 0.0;

    /** Response latency measured from INTENDED departure time, ns. */
    LatencyHistogram readLatency;
    LatencyHistogram updateLatency;
    /** Actual enqueue time minus intended departure time, ns. */
    LatencyHistogram sendLag;

    /**
     * For every key whose PUT (or BATCH member) was acked, the
     * payload word of the last acked value — the durability
     * obligation a crash test holds the server to: after recovery,
     * get(key) must return KvValue::tagged(key, payload).
     */
    std::map<kv::KvKey, std::uint64_t> ackedPuts;

    /**
     * Payloads of PUTs that were sent but never acked (lost in a
     * crash or still in flight at run end). After recovery a key may
     * legitimately hold one of these instead of its ackedPuts entry:
     * the server may have committed the mutation even though the ack
     * never made it back.
     */
    std::map<kv::KvKey, std::vector<std::uint64_t>> unackedPuts;

    /**
     * Every payload ever ACKED for a key, in ack order (the last one
     * equals ackedPuts[key]). A verifier that finds an *older* entry
     * here is looking at a rollback — recovery discarded the newest
     * committed value, typically past a quarantined or torn log
     * segment — which accountable-loss scenarios treat differently
     * from a value that matches nothing ever sent (corruption).
     */
    std::map<kv::KvKey, std::vector<std::uint64_t>> ackedPutHistory;

    std::uint64_t
    completed() const
    {
        return acked + errors;
    }
};

/**
 * Run one open-loop load against a speckv server; see file comment.
 * Single-threaded; returns when every scheduled request is resolved
 * (acked, errored, or lost) or a connection dies.
 */
LoadgenResult runOpenLoop(const LoadgenConfig &config);

} // namespace specpmt::net

#endif // SPECPMT_NET_LOADGEN_HH
