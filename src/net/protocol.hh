/**
 * @file
 * The speckv wire protocol: length-prefixed, CRC-checked binary
 * frames carrying pipelined GET/PUT/DEL/BATCH requests and their
 * responses.
 *
 * Frame layout (all integers little-endian):
 *
 *     u32  length   — bytes that FOLLOW this field (header rest +
 *                     payload + trailer), bounded by kMaxFrameBytes
 *     u8   magic    — kMagic, pins the stream as a speckv connection
 *     u8   version  — kVersion; a decoder rejects others cleanly so
 *                     future revisions fail closed, not corrupt
 *     u8   opcode   — Op below; requests have the top bit clear,
 *                     responses have it set
 *     u8   flags    — kFlagStrict on mutating requests (PUT/DEL/
 *                     BATCH) demands a strict-durability commit;
 *                     kFlagTraced marks a trailing trace-context
 *                     payload extension (any request); all other
 *                     bits are reserved and must be zero
 *     u64  id       — request id, echoed verbatim in the response so
 *                     pipelined clients match completions to arrivals
 *     ...  payload  — opcode-specific (fixed 64-byte KvValue cells)
 *     u32  crc      — CRC32C over magic..payload (everything after
 *                     the length field except the trailer itself)
 *
 * The protocol is strictly pipelined: a client may write any number
 * of frames without waiting; the server answers every request frame
 * in arrival order on the same connection. Any malformed byte —
 * bad magic/version/length/CRC, unknown opcode, payload of the wrong
 * shape — is a *protocol error*: the peer closes the connection
 * rather than guessing at resynchronization.
 *
 * FrameDecoder is incremental: feed() it whatever read() returned
 * (any split, including mid-header) and poll next(); it never reads
 * outside the fed bytes and never allocates more than kMaxFrameBytes
 * per frame.
 */

#ifndef SPECPMT_NET_PROTOCOL_HH
#define SPECPMT_NET_PROTOCOL_HH

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "kv/kv_service.hh"

namespace specpmt::net
{

constexpr std::uint8_t kMagic = 0xC5;
constexpr std::uint8_t kVersion = 1;

/**
 * Request flag: this mutation must be strictly durable — the server
 * may ack it only after its own commit fence, even when serving with
 * epoch group commit (where plain mutations are acked after their
 * epoch's shared fence). Valid on Put, Del and Batch requests only.
 */
constexpr std::uint8_t kFlagStrict = 0x1;

/**
 * Request flag: the frame carries a trace-context extension — the
 * LAST kTraceExtBytes payload bytes are `u64 trace id + u8 ext
 * flags` (bit 0 = sampled), covered by the frame CRC like any other
 * payload byte. FrameDecoder strips the extension into Frame::ext
 * before the typed parsers see the payload, so every request opcode
 * may carry it; a frame with this flag whose payload is shorter than
 * the extension is a protocol error. Responses never carry it (the
 * client already knows the id it assigned). Frames without the flag
 * are byte-identical to the pre-extension protocol, which is what
 * keeps old clients interoperable.
 */
constexpr std::uint8_t kFlagTraced = 0x2;

/** Serialized size of the trace extension (u64 id + u8 flags). */
constexpr std::size_t kTraceExtBytes = 9;

/** Ext-flags bit: this request asked for full span sampling. */
constexpr std::uint8_t kTraceExtSampled = 0x1;

/** Decoded trace-context extension; id 0 means "not traced". */
struct TraceExt
{
    std::uint64_t traceId = 0;
    bool sampled = false;
};

/** Fixed header bytes after the length field (magic..id). */
constexpr std::size_t kHeaderRest = 1 + 1 + 1 + 1 + 8;

/** CRC trailer bytes. */
constexpr std::size_t kTrailer = 4;

/** Upper bound on the length field (header rest + payload + crc). */
constexpr std::size_t kMaxFrameBytes = 1u << 20;

/** Whole-frame size of a payload of @p n bytes. */
constexpr std::size_t
frameSize(std::size_t payload)
{
    return 4 + kHeaderRest + payload + kTrailer;
}

/** Batch entries are capped so one frame stays under kMaxFrameBytes. */
constexpr std::size_t kMaxBatchEntries = 8192;

/** Frame opcodes; responses have the top bit set. */
enum class Op : std::uint8_t
{
    // Requests.
    Hello = 0x01, ///< u32 desired shard (kAnyShard = no preference)
    Get = 0x02,   ///< u64 key
    Put = 0x03,   ///< u64 key + 64-byte value
    Del = 0x04,   ///< u64 key
    Batch = 0x05, ///< u32 count + count × (u64 key + 64-byte value)

    // Responses.
    HelloOk = 0x81,  ///< u32 shard count + u32 bound shard
    Value = 0x82,    ///< 64-byte value (Get hit)
    Ok = 0x83,       ///< empty (Put stored / Del removed / Batch done)
    NotFound = 0x84, ///< empty (Get miss / Del miss)
    Err = 0x85,      ///< u8 code + message bytes
    Busy = 0x86,     ///< empty (overload shed; retry after backoff)
};

/** Hello shard wildcard: bind me anywhere. */
constexpr std::uint32_t kAnyShard = 0xFFFFFFFFu;

/** Err payload codes. */
enum class ErrCode : std::uint8_t
{
    MapFull = 1,  ///< put rejected, shard table full
    BadFrame = 2, ///< semantically malformed request payload
    Shutdown = 3, ///< server is stopping
    /** Mutation rejected: the shard is in read-only degraded mode
     * (log space exhausted or operator-forced). Reads still work;
     * retrying the write on this shard will keep failing. */
    ReadOnly = 4,
    /** The request's transaction hit a media fault (poisoned read /
     * write EIO); it was aborted cleanly and nothing was applied.
     * Retrying may succeed (fresh log blocks avoid the bad lines). */
    Io = 5,
};

/** True for opcodes a client is allowed to send. */
bool isRequestOp(std::uint8_t op);

/** True for any opcode defined by this protocol version. */
bool isKnownOp(std::uint8_t op);

/** One decoded frame. */
struct Frame
{
    Op op = Op::Hello;
    std::uint8_t flags = 0;
    std::uint64_t id = 0;
    /** Payload with any trace extension already stripped off. */
    std::vector<std::uint8_t> payload;
    /** Trace extension (traceId 0 unless kFlagTraced was set). */
    TraceExt ext;
};

/** @name Encoding
 * appendFrame writes one complete frame (length, header, payload,
 * CRC) onto @p out; the typed helpers build the payload too. A
 * non-null @p ext with a nonzero trace id appends the trace
 * extension and raises kFlagTraced; the default leaves the frame
 * byte-identical to the pre-extension encoding.
 */
/// @{

void appendFrame(std::vector<std::uint8_t> &out, Op op,
                 std::uint64_t id, const void *payload,
                 std::size_t payload_size, std::uint8_t flags = 0,
                 const TraceExt *ext = nullptr);

void appendHello(std::vector<std::uint8_t> &out, std::uint64_t id,
                 std::uint32_t desired_shard,
                 const TraceExt *ext = nullptr);
void appendHelloOk(std::vector<std::uint8_t> &out, std::uint64_t id,
                   std::uint32_t shards, std::uint32_t bound_shard);
void appendGet(std::vector<std::uint8_t> &out, std::uint64_t id,
               kv::KvKey key, const TraceExt *ext = nullptr);
void appendPut(std::vector<std::uint8_t> &out, std::uint64_t id,
               kv::KvKey key, const kv::KvValue &value,
               std::uint8_t flags = 0, const TraceExt *ext = nullptr);
void appendDel(std::vector<std::uint8_t> &out, std::uint64_t id,
               kv::KvKey key, std::uint8_t flags = 0,
               const TraceExt *ext = nullptr);
void appendBatch(
    std::vector<std::uint8_t> &out, std::uint64_t id,
    const std::vector<std::pair<kv::KvKey, kv::KvValue>> &items,
    std::uint8_t flags = 0, const TraceExt *ext = nullptr);
void appendValue(std::vector<std::uint8_t> &out, std::uint64_t id,
                 const kv::KvValue &value);
void appendOk(std::vector<std::uint8_t> &out, std::uint64_t id);
void appendNotFound(std::vector<std::uint8_t> &out, std::uint64_t id);
void appendBusy(std::vector<std::uint8_t> &out, std::uint64_t id);
void appendErr(std::vector<std::uint8_t> &out, std::uint64_t id,
               ErrCode code, std::string_view message);

/// @}

/** @name Typed payload parsing
 * Each returns false on a payload of the wrong shape (a protocol
 * error for the caller to act on). Parsers are exact: trailing
 * payload bytes also fail.
 */
/// @{

bool parseHello(const Frame &frame, std::uint32_t &desired_shard);
bool parseHelloOk(const Frame &frame, std::uint32_t &shards,
                  std::uint32_t &bound_shard);
bool parseKey(const Frame &frame, kv::KvKey &key); ///< Get/Del
bool parsePut(const Frame &frame, kv::KvKey &key, kv::KvValue &value);
bool parseBatch(const Frame &frame,
                std::vector<std::pair<kv::KvKey, kv::KvValue>> &items);
bool parseValue(const Frame &frame, kv::KvValue &value);
bool parseErr(const Frame &frame, ErrCode &code, std::string &message);

/// @}

/**
 * Incremental frame decoder; see file comment.
 *
 * Usage:
 *     decoder.feed(buf, n);                  // bytes from read()
 *     Frame f; std::string err;
 *     while (decoder.next(f, err) == FrameDecoder::Status::Frame)
 *         handle(f);
 *     if (decoder.failed()) closeConnection(err);
 */
class FrameDecoder
{
  public:
    enum class Status
    {
        NeedMore, ///< no complete frame buffered yet
        Frame,    ///< one frame decoded into the out-param
        Error,    ///< protocol error; the stream is unrecoverable
    };

    /** Append @p size raw stream bytes. No-op after an error. */
    void feed(const void *data, std::size_t size);

    /**
     * Try to decode the next frame. After Error the decoder stays
     * poisoned (every later call returns Error with the same reason):
     * a byte stream that lied once cannot be resynchronized.
     */
    Status next(Frame &out, std::string &error);

    /** True once a protocol error has been diagnosed. */
    bool failed() const { return failed_; }

    /** True when the diagnosed error was a frame-length-cap breach
     * (servers count these as oversize evictions, separately from
     * garbage-byte protocol errors). */
    bool oversized() const { return oversized_; }

    /** Bytes fed but not yet consumed by decoded frames. */
    std::size_t buffered() const { return buf_.size() - pos_; }

    /**
     * Tighten the per-frame length cap below the protocol-wide
     * kMaxFrameBytes (a server-side overload guard: one peer cannot
     * make the decoder buffer a megabyte per frame). Values above
     * kMaxFrameBytes or below a frame's fixed overhead are clamped.
     */
    void setMaxFrameBytes(std::size_t cap);

  private:
    std::vector<std::uint8_t> buf_;
    std::size_t pos_ = 0;
    std::size_t maxFrame_ = kMaxFrameBytes;
    bool failed_ = false;
    bool oversized_ = false;
    std::string error_;
};

} // namespace specpmt::net

#endif // SPECPMT_NET_PROTOCOL_HH
