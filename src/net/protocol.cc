#include "net/protocol.hh"

#include <algorithm>
#include <cstring>

#include "common/crc32.hh"
#include "common/logging.hh"

namespace specpmt::net
{

namespace
{

void
putU32(std::vector<std::uint8_t> &out, std::uint32_t v)
{
    out.push_back(static_cast<std::uint8_t>(v));
    out.push_back(static_cast<std::uint8_t>(v >> 8));
    out.push_back(static_cast<std::uint8_t>(v >> 16));
    out.push_back(static_cast<std::uint8_t>(v >> 24));
}

void
putU64(std::vector<std::uint8_t> &out, std::uint64_t v)
{
    putU32(out, static_cast<std::uint32_t>(v));
    putU32(out, static_cast<std::uint32_t>(v >> 32));
}

std::uint32_t
readU32(const std::uint8_t *p)
{
    return static_cast<std::uint32_t>(p[0]) |
           static_cast<std::uint32_t>(p[1]) << 8 |
           static_cast<std::uint32_t>(p[2]) << 16 |
           static_cast<std::uint32_t>(p[3]) << 24;
}

std::uint64_t
readU64(const std::uint8_t *p)
{
    return static_cast<std::uint64_t>(readU32(p)) |
           static_cast<std::uint64_t>(readU32(p + 4)) << 32;
}

/** Bounds-checked sequential payload reader. */
class PayloadReader
{
  public:
    explicit PayloadReader(const std::vector<std::uint8_t> &payload)
        : p_(payload.data()), n_(payload.size())
    {
    }

    bool
    u8(std::uint8_t &out)
    {
        if (off_ + 1 > n_)
            return false;
        out = p_[off_];
        off_ += 1;
        return true;
    }

    bool
    u32(std::uint32_t &out)
    {
        if (off_ + 4 > n_)
            return false;
        out = readU32(p_ + off_);
        off_ += 4;
        return true;
    }

    bool
    u64(std::uint64_t &out)
    {
        if (off_ + 8 > n_)
            return false;
        out = readU64(p_ + off_);
        off_ += 8;
        return true;
    }

    bool
    bytes(void *dst, std::size_t size)
    {
        if (off_ + size > n_ || size > n_)
            return false;
        std::memcpy(dst, p_ + off_, size);
        off_ += size;
        return true;
    }

    /** Everything left, as a string (Err messages). */
    std::string
    rest()
    {
        std::string s(reinterpret_cast<const char *>(p_ + off_),
                      n_ - off_);
        off_ = n_;
        return s;
    }

    bool done() const { return off_ == n_; }

  private:
    const std::uint8_t *p_;
    std::size_t n_;
    std::size_t off_ = 0;
};

bool
readValueCell(PayloadReader &reader, kv::KvValue &value)
{
    for (auto &word : value.words) {
        if (!reader.u64(word))
            return false;
    }
    return true;
}

void
putValueCell(std::vector<std::uint8_t> &out, const kv::KvValue &value)
{
    for (const auto word : value.words)
        putU64(out, word);
}

} // namespace

bool
isRequestOp(std::uint8_t op)
{
    return op >= static_cast<std::uint8_t>(Op::Hello) &&
           op <= static_cast<std::uint8_t>(Op::Batch);
}

bool
isKnownOp(std::uint8_t op)
{
    return isRequestOp(op) ||
           (op >= static_cast<std::uint8_t>(Op::HelloOk) &&
            op <= static_cast<std::uint8_t>(Op::Busy));
}

void
appendFrame(std::vector<std::uint8_t> &out, Op op, std::uint64_t id,
            const void *payload, std::size_t payload_size,
            std::uint8_t flags, const TraceExt *ext)
{
    const bool traced = ext != nullptr && ext->traceId != 0;
    const std::size_t ext_size = traced ? kTraceExtBytes : 0;
    if (traced)
        flags |= kFlagTraced;
    SPECPMT_ASSERT(kHeaderRest + payload_size + ext_size + kTrailer <=
                   kMaxFrameBytes);
    const std::uint32_t length = static_cast<std::uint32_t>(
        kHeaderRest + payload_size + ext_size + kTrailer);
    const std::size_t body_start = out.size() + 4;
    putU32(out, length);
    out.push_back(kMagic);
    out.push_back(kVersion);
    out.push_back(static_cast<std::uint8_t>(op));
    out.push_back(flags);
    putU64(out, id);
    if (payload_size != 0) {
        const auto *bytes = static_cast<const std::uint8_t *>(payload);
        out.insert(out.end(), bytes, bytes + payload_size);
    }
    if (traced) {
        putU64(out, ext->traceId);
        out.push_back(ext->sampled ? kTraceExtSampled : 0);
    }
    const std::uint32_t crc = crc32c(out.data() + body_start,
                                     kHeaderRest + payload_size +
                                         ext_size);
    putU32(out, crc);
}

void
appendHello(std::vector<std::uint8_t> &out, std::uint64_t id,
            std::uint32_t desired_shard, const TraceExt *ext)
{
    std::vector<std::uint8_t> payload;
    putU32(payload, desired_shard);
    appendFrame(out, Op::Hello, id, payload.data(), payload.size(), 0,
                ext);
}

void
appendHelloOk(std::vector<std::uint8_t> &out, std::uint64_t id,
              std::uint32_t shards, std::uint32_t bound_shard)
{
    std::vector<std::uint8_t> payload;
    putU32(payload, shards);
    putU32(payload, bound_shard);
    appendFrame(out, Op::HelloOk, id, payload.data(), payload.size());
}

void
appendGet(std::vector<std::uint8_t> &out, std::uint64_t id,
          kv::KvKey key, const TraceExt *ext)
{
    std::vector<std::uint8_t> payload;
    putU64(payload, key);
    appendFrame(out, Op::Get, id, payload.data(), payload.size(), 0,
                ext);
}

void
appendPut(std::vector<std::uint8_t> &out, std::uint64_t id,
          kv::KvKey key, const kv::KvValue &value, std::uint8_t flags,
          const TraceExt *ext)
{
    std::vector<std::uint8_t> payload;
    payload.reserve(8 + sizeof(kv::KvValue));
    putU64(payload, key);
    putValueCell(payload, value);
    appendFrame(out, Op::Put, id, payload.data(), payload.size(),
                flags, ext);
}

void
appendDel(std::vector<std::uint8_t> &out, std::uint64_t id,
          kv::KvKey key, std::uint8_t flags, const TraceExt *ext)
{
    std::vector<std::uint8_t> payload;
    putU64(payload, key);
    appendFrame(out, Op::Del, id, payload.data(), payload.size(),
                flags, ext);
}

void
appendBatch(std::vector<std::uint8_t> &out, std::uint64_t id,
            const std::vector<std::pair<kv::KvKey, kv::KvValue>>
                &items,
            std::uint8_t flags, const TraceExt *ext)
{
    SPECPMT_ASSERT(items.size() <= kMaxBatchEntries);
    std::vector<std::uint8_t> payload;
    payload.reserve(4 + items.size() * (8 + sizeof(kv::KvValue)));
    putU32(payload, static_cast<std::uint32_t>(items.size()));
    for (const auto &[key, value] : items) {
        putU64(payload, key);
        putValueCell(payload, value);
    }
    appendFrame(out, Op::Batch, id, payload.data(), payload.size(),
                flags, ext);
}

void
appendValue(std::vector<std::uint8_t> &out, std::uint64_t id,
            const kv::KvValue &value)
{
    std::vector<std::uint8_t> payload;
    payload.reserve(sizeof(kv::KvValue));
    putValueCell(payload, value);
    appendFrame(out, Op::Value, id, payload.data(), payload.size());
}

void
appendOk(std::vector<std::uint8_t> &out, std::uint64_t id)
{
    appendFrame(out, Op::Ok, id, nullptr, 0);
}

void
appendNotFound(std::vector<std::uint8_t> &out, std::uint64_t id)
{
    appendFrame(out, Op::NotFound, id, nullptr, 0);
}

void
appendBusy(std::vector<std::uint8_t> &out, std::uint64_t id)
{
    appendFrame(out, Op::Busy, id, nullptr, 0);
}

void
appendErr(std::vector<std::uint8_t> &out, std::uint64_t id,
          ErrCode code, std::string_view message)
{
    std::vector<std::uint8_t> payload;
    payload.reserve(1 + message.size());
    payload.push_back(static_cast<std::uint8_t>(code));
    payload.insert(payload.end(), message.begin(), message.end());
    appendFrame(out, Op::Err, id, payload.data(), payload.size());
}

bool
parseHello(const Frame &frame, std::uint32_t &desired_shard)
{
    if (frame.op != Op::Hello)
        return false;
    PayloadReader reader(frame.payload);
    return reader.u32(desired_shard) && reader.done();
}

bool
parseHelloOk(const Frame &frame, std::uint32_t &shards,
             std::uint32_t &bound_shard)
{
    if (frame.op != Op::HelloOk)
        return false;
    PayloadReader reader(frame.payload);
    return reader.u32(shards) && reader.u32(bound_shard) &&
           reader.done();
}

bool
parseKey(const Frame &frame, kv::KvKey &key)
{
    if (frame.op != Op::Get && frame.op != Op::Del)
        return false;
    PayloadReader reader(frame.payload);
    return reader.u64(key) && reader.done();
}

bool
parsePut(const Frame &frame, kv::KvKey &key, kv::KvValue &value)
{
    if (frame.op != Op::Put)
        return false;
    PayloadReader reader(frame.payload);
    return reader.u64(key) && readValueCell(reader, value) &&
           reader.done();
}

bool
parseBatch(const Frame &frame,
           std::vector<std::pair<kv::KvKey, kv::KvValue>> &items)
{
    items.clear();
    if (frame.op != Op::Batch)
        return false;
    PayloadReader reader(frame.payload);
    std::uint32_t count = 0;
    if (!reader.u32(count) || count > kMaxBatchEntries)
        return false;
    items.reserve(count);
    for (std::uint32_t i = 0; i < count; ++i) {
        kv::KvKey key;
        kv::KvValue value;
        if (!reader.u64(key) || !readValueCell(reader, value))
            return false;
        items.emplace_back(key, value);
    }
    return reader.done();
}

bool
parseValue(const Frame &frame, kv::KvValue &value)
{
    if (frame.op != Op::Value)
        return false;
    PayloadReader reader(frame.payload);
    return readValueCell(reader, value) && reader.done();
}

bool
parseErr(const Frame &frame, ErrCode &code, std::string &message)
{
    if (frame.op != Op::Err)
        return false;
    PayloadReader reader(frame.payload);
    std::uint8_t raw = 0;
    if (!reader.u8(raw))
        return false;
    code = static_cast<ErrCode>(raw);
    message = reader.rest();
    return true;
}

void
FrameDecoder::setMaxFrameBytes(std::size_t cap)
{
    maxFrame_ = std::min(
        kMaxFrameBytes,
        std::max(cap, kHeaderRest + kTrailer));
}

void
FrameDecoder::feed(const void *data, std::size_t size)
{
    if (failed_ || size == 0)
        return;
    const auto *bytes = static_cast<const std::uint8_t *>(data);
    // Compact the consumed prefix before it dominates the buffer.
    if (pos_ > 4096 && pos_ > buf_.size() / 2) {
        buf_.erase(buf_.begin(),
                   buf_.begin() + static_cast<std::ptrdiff_t>(pos_));
        pos_ = 0;
    }
    buf_.insert(buf_.end(), bytes, bytes + size);
}

FrameDecoder::Status
FrameDecoder::next(Frame &out, std::string &error)
{
    if (failed_) {
        error = error_;
        return Status::Error;
    }
    auto fail = [&](std::string reason) {
        failed_ = true;
        error_ = std::move(reason);
        error = error_;
        return Status::Error;
    };

    const std::size_t avail = buf_.size() - pos_;
    if (avail < 4)
        return Status::NeedMore;
    const std::uint8_t *base = buf_.data() + pos_;
    const std::uint32_t length = readU32(base);
    if (length < kHeaderRest + kTrailer)
        return fail("frame length " + std::to_string(length) +
                    " below the fixed header size");
    if (length > maxFrame_) {
        oversized_ = true;
        return fail("frame length " + std::to_string(length) +
                    " exceeds the " + std::to_string(maxFrame_) +
                    "-byte cap");
    }
    if (avail < 4 + static_cast<std::size_t>(length))
        return Status::NeedMore;

    const std::uint8_t *body = base + 4;
    if (body[0] != kMagic)
        return fail("bad magic byte");
    if (body[1] != kVersion)
        return fail("unsupported protocol version " +
                    std::to_string(body[1]));
    if (!isKnownOp(body[2]))
        return fail("unknown opcode " + std::to_string(body[2]));
    const std::size_t covered = length - kTrailer;
    const std::uint32_t want = readU32(body + covered);
    const std::uint32_t got = crc32c(body, covered);
    if (want != got)
        return fail("frame CRC mismatch");

    out.op = static_cast<Op>(body[2]);
    out.flags = body[3];
    out.id = readU64(body + 4);
    out.ext = TraceExt{};
    std::size_t payload_end = covered;
    if ((out.flags & kFlagTraced) != 0) {
        // The trace extension rides the tail of the payload, already
        // CRC-covered; strip it so typed parsers see the base shape.
        if (covered - kHeaderRest < kTraceExtBytes)
            return fail("traced frame payload shorter than the "
                        "trace extension");
        payload_end = covered - kTraceExtBytes;
        out.ext.traceId = readU64(body + payload_end);
        out.ext.sampled =
            (body[payload_end + 8] & kTraceExtSampled) != 0;
    }
    out.payload.assign(body + kHeaderRest, body + payload_end);
    pos_ += 4 + length;
    return Status::Frame;
}

} // namespace specpmt::net
