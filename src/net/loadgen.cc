#include "net/loadgen.hh"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstring>
#include <fcntl.h>
#include <memory>
#include <unordered_map>

#include "common/logging.hh"
#include "net/protocol.hh"
#include "obs/metrics.hh"
#include "obs/trace.hh"

namespace specpmt::net
{

namespace
{

std::uint64_t
steadyNs()
{
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now().time_since_epoch())
            .count());
}

struct LoadgenMetrics
{
    obs::Counter &scheduled;
    obs::Counter &sent;
    obs::Counter &acked;
    obs::Counter &errors;
    obs::Counter &notFound;
    obs::Counter &lost;
    obs::Counter &protocolErrors;
    obs::Counter &tracedSent;
    obs::Histogram &readLatency;
    obs::Histogram &updateLatency;
    obs::Histogram &sendLag;

    static LoadgenMetrics &
    instance()
    {
        auto &reg = obs::Registry::global();
        static LoadgenMetrics metrics{
            reg.counter("specpmt_loadgen_scheduled_total",
                        "requests scheduled on the arrival timeline"),
            reg.counter("specpmt_loadgen_sent_total",
                        "requests written to a socket"),
            reg.counter("specpmt_loadgen_acked_total",
                        "responses matched to requests"),
            reg.counter("specpmt_loadgen_errors_total",
                        "Err responses received"),
            reg.counter("specpmt_loadgen_not_found_total",
                        "Get misses"),
            reg.counter("specpmt_loadgen_lost_total",
                        "requests unanswered at run end"),
            reg.counter("specpmt_loadgen_protocol_errors_total",
                        "malformed response frames"),
            reg.counter("specpmt_loadgen_traced_sent_total",
                        "requests sent with the trace extension"),
            reg.histogram("specpmt_loadgen_read_latency_ns",
                          "read latency from intended departure"),
            reg.histogram("specpmt_loadgen_update_latency_ns",
                          "update latency from intended departure"),
            reg.histogram(
                "specpmt_loadgen_send_lag_ns",
                "actual minus intended departure time"),
        };
        return metrics;
    }
};

/** One shard-bound connection. */
struct Conn
{
    int fd = -1;
    FrameDecoder decoder;
    std::vector<std::uint8_t> out;
    std::size_t outPos = 0;
    bool dead = false;
};

/** What we remember about an in-flight request. */
struct Outstanding
{
    /** Intended departure, ns from timeline origin (load phase: 0). */
    std::uint64_t intendedNs = 0;
    enum class Kind : std::uint8_t
    {
        Read,
        Update,
        Load, ///< load-phase batch: no latency sample
    } kind = Kind::Read;
    /** Trace id the request carried (0 = untraced). */
    std::uint64_t traceId = 0;
    /** Absolute steady ns of the socket enqueue (client_rtt base). */
    std::uint64_t sentNs = 0;
    /** Durability obligations this request carries if acked. */
    std::vector<std::pair<kv::KvKey, std::uint64_t>> writes;
};

class OpenLoopRun
{
  public:
    explicit OpenLoopRun(const LoadgenConfig &config)
        : cfg_(config)
    {
    }

    LoadgenResult
    run()
    {
        if (!connectAll())
            return std::move(res_);
        if (cfg_.loadFirst && !loadKeyspace()) {
            closeAll();
            return std::move(res_);
        }
        timedRun();
        closeAll();
        publishMetrics();
        return std::move(res_);
    }

  private:
    bool
    abort(std::string why)
    {
        res_.aborted = true;
        res_.error = std::move(why);
        closeAll();
        return false;
    }

    void
    closeAll()
    {
        for (auto &conn : conns_) {
            if (conn.fd >= 0)
                ::close(conn.fd);
            conn.fd = -1;
        }
    }

    int
    connectTcp()
    {
        const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
        if (fd < 0)
            return -1;
        sockaddr_in addr{};
        addr.sin_family = AF_INET;
        addr.sin_port = htons(cfg_.port);
        if (::inet_pton(AF_INET, cfg_.host.c_str(), &addr.sin_addr) !=
            1) {
            ::close(fd);
            return -1;
        }
        if (::connect(fd, reinterpret_cast<sockaddr *>(&addr),
                      sizeof(addr)) != 0) {
            ::close(fd);
            return -1;
        }
        const int one = 1;
        ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
        return fd;
    }

    /**
     * Blocking HELLO exchange on a fresh connection; returns the fd
     * (still blocking) or -1. The response fills shards/bound.
     */
    int
    helloConnect(std::uint32_t desired, std::uint32_t &shards,
                 std::uint32_t &bound)
    {
        const int fd = connectTcp();
        if (fd < 0)
            return -1;
        std::vector<std::uint8_t> hello;
        appendHello(hello, ++nextId_, desired);
        std::size_t off = 0;
        while (off < hello.size()) {
            const ssize_t n = ::send(fd, hello.data() + off,
                                     hello.size() - off, MSG_NOSIGNAL);
            if (n <= 0) {
                ::close(fd);
                return -1;
            }
            off += static_cast<std::size_t>(n);
        }
        FrameDecoder decoder;
        Frame frame;
        std::string error;
        for (;;) {
            switch (decoder.next(frame, error)) {
            case FrameDecoder::Status::Frame:
                if (!parseHelloOk(frame, shards, bound)) {
                    ::close(fd);
                    return -1;
                }
                return fd;
            case FrameDecoder::Status::Error:
                ::close(fd);
                return -1;
            case FrameDecoder::Status::NeedMore:
                break;
            }
            std::uint8_t buf[512];
            const ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
            if (n <= 0) {
                ::close(fd);
                return -1;
            }
            decoder.feed(buf, static_cast<std::size_t>(n));
        }
    }

    bool
    connectAll()
    {
        // Probe with a wildcard HELLO to learn the shard count, then
        // open one shard-bound connection per shard.
        std::uint32_t shards = 0;
        std::uint32_t bound = 0;
        const int probe = helloConnect(kAnyShard, shards, bound);
        if (probe < 0)
            return abort("connect/handshake with " + cfg_.host + ":" +
                         std::to_string(cfg_.port) + " failed");
        ::close(probe);
        if (shards == 0)
            return abort("server reported zero shards");
        shards_ = shards;
        conns_.resize(shards_);
        for (std::uint32_t s = 0; s < shards_; ++s) {
            std::uint32_t gotShards = 0;
            std::uint32_t gotBound = 0;
            const int fd = helloConnect(s, gotShards, gotBound);
            if (fd < 0 || gotBound != s) {
                if (fd >= 0)
                    ::close(fd);
                return abort("binding a connection to shard " +
                             std::to_string(s) + " failed");
            }
            const int flags = ::fcntl(fd, F_GETFL, 0);
            ::fcntl(fd, F_SETFL, flags | O_NONBLOCK);
            conns_[s].fd = fd;
        }
        return true;
    }

    Conn &
    connOf(kv::KvKey key)
    {
        return conns_[kv::shardOfKey(key, shards_)];
    }

    /**
     * Flush pending output and drain readable responses once; returns
     * false when every connection is dead.
     */
    bool
    pump(int timeout_ms)
    {
        std::vector<pollfd> fds;
        std::vector<unsigned> index;
        fds.reserve(conns_.size());
        for (unsigned i = 0; i < conns_.size(); ++i) {
            auto &conn = conns_[i];
            if (conn.dead)
                continue;
            flush(conn);
            short events = POLLIN;
            if (conn.outPos < conn.out.size())
                events |= POLLOUT;
            fds.push_back(pollfd{conn.fd, events, 0});
            index.push_back(i);
        }
        if (fds.empty())
            return false;
        const int ready =
            ::poll(fds.data(), fds.size(), timeout_ms);
        if (ready <= 0)
            return true;
        for (std::size_t i = 0; i < fds.size(); ++i) {
            auto &conn = conns_[index[i]];
            if (fds[i].revents & (POLLERR | POLLHUP))
                conn.dead = true;
            if (conn.dead)
                continue;
            if (fds[i].revents & POLLOUT)
                flush(conn);
            if (fds[i].revents & POLLIN)
                readReady(conn);
        }
        return std::any_of(conns_.begin(), conns_.end(),
                           [](const Conn &c) { return !c.dead; });
    }

    void
    flush(Conn &conn)
    {
        while (conn.outPos < conn.out.size()) {
            const ssize_t n =
                ::send(conn.fd, conn.out.data() + conn.outPos,
                       conn.out.size() - conn.outPos, MSG_NOSIGNAL);
            if (n > 0) {
                conn.outPos += static_cast<std::size_t>(n);
                continue;
            }
            if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK))
                return;
            conn.dead = true;
            return;
        }
        conn.out.clear();
        conn.outPos = 0;
    }

    void
    readReady(Conn &conn)
    {
        std::uint8_t buf[64 * 1024];
        for (;;) {
            const ssize_t n = ::recv(conn.fd, buf, sizeof(buf), 0);
            if (n > 0) {
                conn.decoder.feed(buf, static_cast<std::size_t>(n));
                if (static_cast<std::size_t>(n) < sizeof(buf))
                    break;
                continue;
            }
            if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK))
                break;
            conn.dead = true;
            break;
        }
        Frame frame;
        std::string error;
        for (;;) {
            const auto status = conn.decoder.next(frame, error);
            if (status == FrameDecoder::Status::NeedMore)
                break;
            if (status == FrameDecoder::Status::Error) {
                ++res_.protocolErrors;
                conn.dead = true;
                break;
            }
            handleResponse(frame);
        }
    }

    void
    handleResponse(const Frame &frame)
    {
        const auto it = outstanding_.find(frame.id);
        if (it == outstanding_.end()) {
            ++res_.protocolErrors;
            return;
        }
        const Outstanding op = std::move(it->second);
        outstanding_.erase(it);

        bool ok = false;
        switch (frame.op) {
        case Op::Value:
        case Op::Ok:
            ok = true;
            break;
        case Op::NotFound:
            ok = true;
            ++res_.notFound;
            break;
        case Op::Err:
            ++res_.errors;
            break;
        default:
            ++res_.protocolErrors;
            return;
        }
        if (!ok)
            return;
        for (const auto &[key, payload] : op.writes)
            res_.ackedPuts[key] = payload;
        // Load-phase batches are plumbing, not measured traffic.
        if (op.kind == Outstanding::Kind::Load)
            return;
        ++res_.acked;
        const std::uint64_t now = steadyNs();
        if (op.traceId != 0 && obs::Tracer::global().enabled())
            obs::Tracer::global().record("client_rtt", "client",
                                         op.sentNs, now, op.traceId);
        const std::uint64_t intendedAbs = origin_ + op.intendedNs;
        const std::uint64_t latency =
            now > intendedAbs ? now - intendedAbs : 0;
        if (op.kind == Outstanding::Kind::Read)
            res_.readLatency.record(latency);
        else
            res_.updateLatency.record(latency);
    }

    bool
    loadKeyspace()
    {
        // Shard-grouped BATCH frames so each frame is one same-shard
        // run (one commit fence) on the server.
        std::vector<std::vector<kv::KvKey>> byShard(shards_);
        for (kv::KvKey key = 1; key <= cfg_.workload.keys; ++key)
            byShard[kv::shardOfKey(key, shards_)].push_back(key);
        const std::size_t batch = std::max<std::size_t>(
            1, std::min(cfg_.loadBatch, kMaxBatchEntries));
        for (std::uint32_t s = 0; s < shards_; ++s) {
            const auto &keys = byShard[s];
            for (std::size_t off = 0; off < keys.size();
                 off += batch) {
                const std::size_t n =
                    std::min(batch, keys.size() - off);
                std::vector<std::pair<kv::KvKey, kv::KvValue>> items;
                items.reserve(n);
                Outstanding op;
                op.kind = Outstanding::Kind::Load;
                for (std::size_t i = 0; i < n; ++i) {
                    const kv::KvKey key = keys[off + i];
                    items.emplace_back(key,
                                       kv::KvValue::tagged(key, 0));
                    op.writes.emplace_back(key, 0);
                }
                const std::uint64_t id = ++nextId_;
                appendBatch(conns_[s].out, id, items);
                outstanding_.emplace(id, std::move(op));
            }
        }
        // Pump until every load batch is acked.
        const std::uint64_t deadline =
            steadyNs() + 60ull * 1000 * 1000 * 1000;
        while (!outstanding_.empty()) {
            if (steadyNs() > deadline)
                return abort("keyspace load timed out");
            if (!pump(100))
                return abort("connections died during keyspace load");
        }
        return true;
    }

    void
    timedRun()
    {
        // Fix the entire arrival timeline up front: intended
        // departure offsets in ns from the origin.
        const std::uint64_t total = static_cast<std::uint64_t>(
            std::llround(cfg_.targetQps * cfg_.seconds));
        std::vector<std::uint64_t> intended;
        intended.reserve(total);
        const double meanGapNs = 1e9 / cfg_.targetQps;
        Rng arrivals(cfg_.seed ^ 0xA441A441A441A441ull);
        double t = 0.0;
        for (std::uint64_t i = 0; i < total; ++i) {
            if (cfg_.arrival == Arrival::Fixed) {
                intended.push_back(static_cast<std::uint64_t>(
                    static_cast<double>(i) * meanGapNs));
            } else {
                t += -meanGapNs *
                     std::log1p(-arrivals.uniform());
                intended.push_back(
                    static_cast<std::uint64_t>(t));
            }
        }

        kv::OpGenerator gen(
            cfg_.workload,
            zipf_ ? zipf_.get() : buildZipf(),
            kv::OpGenerator::workerSeed(cfg_.seed, 0));

        origin_ = steadyNs();
        const std::uint64_t timelineEndAbs =
            origin_ +
            (total ? intended.back() : 0) +
            static_cast<std::uint64_t>(cfg_.drainSeconds * 1e9);

        std::uint64_t nextOp = 0;
        bool alive = true;
        while (alive && (nextOp < total || !outstanding_.empty())) {
            const std::uint64_t now = steadyNs();
            if (now > timelineEndAbs)
                break;
            // Departures whose intended time has arrived leave NOW,
            // regardless of outstanding responses (open loop).
            while (nextOp < total &&
                   origin_ + intended[nextOp] <= now) {
                enqueue(gen.next(), intended[nextOp], now);
                ++nextOp;
            }
            int timeout_ms = 100;
            if (nextOp < total) {
                const std::uint64_t at = origin_ + intended[nextOp];
                timeout_ms =
                    at <= now
                        ? 0
                        : static_cast<int>(std::min<std::uint64_t>(
                              (at - now) / 1000000, 100));
            }
            alive = pump(timeout_ms);
        }

        res_.scheduled = total;
        res_.lost = outstanding_.size();
        for (const auto &[id, op] : outstanding_) {
            for (const auto &[key, payload] : op.writes)
                res_.unackedPuts[key].push_back(payload);
        }
        res_.connectionLost =
            std::any_of(conns_.begin(), conns_.end(),
                        [](const Conn &c) { return c.dead; });
        outstanding_.clear();
        res_.wallSeconds =
            static_cast<double>(steadyNs() - origin_) / 1e9;
        res_.achievedQps =
            res_.wallSeconds > 0
                ? static_cast<double>(res_.acked) / res_.wallSeconds
                : 0.0;
    }

    void
    enqueue(kv::WorkloadOp op, std::uint64_t intendedNs,
            std::uint64_t now)
    {
        const std::uint64_t id = ++nextId_;
        Outstanding record;
        record.intendedNs = intendedNs;
        record.sentNs = now;
        TraceExt ext;
        const TraceExt *extp =
            drawTraceExt(ext) ? &ext : nullptr;
        record.traceId = extp ? ext.traceId : 0;
        switch (op.kind) {
        case kv::WorkloadOp::Kind::Get:
            record.kind = Outstanding::Kind::Read;
            appendGet(connOf(op.key).out, id, op.key, extp);
            break;
        case kv::WorkloadOp::Kind::Put:
            record.kind = Outstanding::Kind::Update;
            record.writes.emplace_back(op.key, op.value.words[1]);
            appendPut(connOf(op.key).out, id, op.key, op.value,
                      drawStrictFlag(), extp);
            break;
        case kv::WorkloadOp::Kind::MultiPut: {
            record.kind = Outstanding::Kind::Update;
            for (const auto &[key, value] : op.batch)
                record.writes.emplace_back(key, value.words[1]);
            // A batch frame lands on one connection; misrouted
            // members split the server-side run (correct, just more
            // fences), so route by the first key's shard.
            appendBatch(connOf(op.batch.front().first).out, id,
                        op.batch, drawStrictFlag(), extp);
            break;
        }
        }
        const std::uint64_t intendedAbs = origin_ + intendedNs;
        // client_send spans the departure delay: intended departure
        // to the socket enqueue (the open-loop send lag).
        if (record.traceId != 0 && obs::Tracer::global().enabled())
            obs::Tracer::global().record(
                "client_send", "client",
                std::min(intendedAbs, now), now, record.traceId);
        outstanding_.emplace(id, std::move(record));
        ++res_.sent;
        res_.sendLag.record(now > intendedAbs ? now - intendedAbs
                                              : 0);
    }

    /** kFlagStrict for a seeded strictFraction of mutation frames. */
    std::uint8_t
    drawStrictFlag()
    {
        if (cfg_.strictFraction <= 0.0)
            return 0;
        if (cfg_.strictFraction < 1.0 &&
            strictRng_.uniform() >= cfg_.strictFraction)
            return 0;
        ++res_.strictSent;
        return kFlagStrict;
    }

    /**
     * Trace extension for a seeded traceSample of requests; fills
     * @p ext and returns true when this request is traced.
     */
    bool
    drawTraceExt(TraceExt &ext)
    {
        if (cfg_.traceSample <= 0.0)
            return false;
        if (cfg_.traceSample < 1.0 &&
            traceRng_.uniform() >= cfg_.traceSample)
            return false;
        ext.traceId = traceRng_.next() | 1; // 0 means untraced
        ext.sampled = true;
        ++res_.tracedSent;
        return true;
    }

    const kv::ZipfianGenerator *
    buildZipf()
    {
        if (cfg_.workload.dist != kv::KeyDist::Zipfian)
            return nullptr;
        zipf_ = std::make_unique<kv::ZipfianGenerator>(
            cfg_.workload.keys, cfg_.workload.zipfTheta);
        return zipf_.get();
    }

    void
    publishMetrics()
    {
        auto &metrics = LoadgenMetrics::instance();
        metrics.scheduled.add(res_.scheduled);
        metrics.sent.add(res_.sent);
        metrics.acked.add(res_.acked);
        metrics.errors.add(res_.errors);
        metrics.notFound.add(res_.notFound);
        metrics.lost.add(res_.lost);
        metrics.protocolErrors.add(res_.protocolErrors);
        metrics.tracedSent.add(res_.tracedSent);
        metrics.readLatency.mergeFrom(res_.readLatency);
        metrics.updateLatency.mergeFrom(res_.updateLatency);
        metrics.sendLag.mergeFrom(res_.sendLag);
    }

    LoadgenConfig cfg_;
    LoadgenResult res_;
    std::vector<Conn> conns_;
    std::uint32_t shards_ = 0;
    std::uint64_t nextId_ = 0;
    std::uint64_t origin_ = 0;
    std::unordered_map<std::uint64_t, Outstanding> outstanding_;
    std::unique_ptr<kv::ZipfianGenerator> zipf_;
    Rng strictRng_{cfg_.seed ^ 0x57121C7F1A6ull};
    Rng traceRng_{cfg_.seed ^ 0x712ACE5A3B1Dull};
};

} // namespace

const char *
arrivalName(Arrival arrival)
{
    switch (arrival) {
    case Arrival::Fixed:
        return "fixed";
    case Arrival::Poisson:
        return "poisson";
    }
    return "?";
}

LoadgenResult
runOpenLoop(const LoadgenConfig &config)
{
    SPECPMT_ASSERT(config.targetQps > 0);
    OpenLoopRun run(config);
    return run.run();
}

} // namespace specpmt::net
