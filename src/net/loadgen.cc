#include "net/loadgen.hh"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/time.h>
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstring>
#include <deque>
#include <fcntl.h>
#include <memory>
#include <unordered_map>
#include <unordered_set>

#include "common/logging.hh"
#include "net/protocol.hh"
#include "obs/metrics.hh"
#include "obs/trace.hh"

namespace specpmt::net
{

namespace
{

std::uint64_t
steadyNs()
{
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now().time_since_epoch())
            .count());
}

struct LoadgenMetrics
{
    obs::Counter &scheduled;
    obs::Counter &sent;
    obs::Counter &acked;
    obs::Counter &errors;
    obs::Counter &notFound;
    obs::Counter &lost;
    obs::Counter &protocolErrors;
    obs::Counter &tracedSent;
    obs::Counter &timeouts;
    obs::Counter &retries;
    obs::Counter &reconnects;
    obs::Counter &busyResponses;
    obs::Histogram &readLatency;
    obs::Histogram &updateLatency;
    obs::Histogram &sendLag;

    static LoadgenMetrics &
    instance()
    {
        auto &reg = obs::Registry::global();
        static LoadgenMetrics metrics{
            reg.counter("specpmt_loadgen_scheduled_total",
                        "requests scheduled on the arrival timeline"),
            reg.counter("specpmt_loadgen_sent_total",
                        "requests written to a socket"),
            reg.counter("specpmt_loadgen_acked_total",
                        "responses matched to requests"),
            reg.counter("specpmt_loadgen_errors_total",
                        "Err responses received"),
            reg.counter("specpmt_loadgen_not_found_total",
                        "Get misses"),
            reg.counter("specpmt_loadgen_lost_total",
                        "requests unanswered at run end"),
            reg.counter("specpmt_loadgen_protocol_errors_total",
                        "malformed response frames"),
            reg.counter("specpmt_loadgen_traced_sent_total",
                        "requests sent with the trace extension"),
            reg.counter("specpmt_loadgen_timeouts_total",
                        "attempts whose deadline expired unanswered"),
            reg.counter("specpmt_loadgen_retries_total",
                        "byte-identical resends (timeout or Busy)"),
            reg.counter("specpmt_loadgen_reconnects_total",
                        "successful re-dials of a dead connection"),
            reg.counter("specpmt_loadgen_busy_total",
                        "Busy (overload-shed) responses received"),
            reg.histogram("specpmt_loadgen_read_latency_ns",
                          "read latency from intended departure"),
            reg.histogram("specpmt_loadgen_update_latency_ns",
                          "update latency from intended departure"),
            reg.histogram(
                "specpmt_loadgen_send_lag_ns",
                "actual minus intended departure time"),
        };
        return metrics;
    }
};

/** One shard-bound connection. */
struct Conn
{
    int fd = -1;
    FrameDecoder decoder;
    std::vector<std::uint8_t> out;
    std::size_t outPos = 0;
    bool dead = false;
    /** Next re-dial attempt, absolute steady ns (0 = unscheduled). */
    std::uint64_t reconnectAtNs = 0;
    /** Consecutive failed re-dials (backoff exponent). */
    std::uint32_t reconnectAttempts = 0;
};

/** What we remember about an in-flight request. */
struct Outstanding
{
    /** Intended departure, ns from timeline origin (load phase: 0). */
    std::uint64_t intendedNs = 0;
    enum class Kind : std::uint8_t
    {
        Read,
        Update,
        Load, ///< load-phase batch: no latency sample
    } kind = Kind::Read;
    /** Trace id the request carried (0 = untraced). */
    std::uint64_t traceId = 0;
    /** Absolute steady ns of the socket enqueue (client_rtt base). */
    std::uint64_t sentNs = 0;
    /** Durability obligations this request carries if acked. */
    std::vector<std::pair<kv::KvKey, std::uint64_t>> writes;
    /** Shard (connection index) the request is routed to. */
    std::uint32_t shard = 0;
    /** Attempts so far (1 = the original send). */
    std::uint32_t attempts = 1;
    /** Active deadline, absolute steady ns (0 = none pending). */
    std::uint64_t deadlineAbs = 0;
    /** The encoded frame, kept for byte-identical resends (empty
     * when retries are disabled). */
    std::vector<std::uint8_t> frame;
};

class OpenLoopRun
{
  public:
    explicit OpenLoopRun(const LoadgenConfig &config)
        : cfg_(config)
    {
    }

    LoadgenResult
    run()
    {
        if (!connectAll())
            return std::move(res_);
        if (cfg_.loadFirst && !loadKeyspace()) {
            closeAll();
            return std::move(res_);
        }
        timedRun();
        closeAll();
        publishMetrics();
        return std::move(res_);
    }

  private:
    bool
    abort(std::string why)
    {
        res_.aborted = true;
        res_.error = std::move(why);
        closeAll();
        return false;
    }

    void
    closeAll()
    {
        for (auto &conn : conns_) {
            if (conn.fd >= 0)
                ::close(conn.fd);
            conn.fd = -1;
        }
    }

    int
    connectTcp()
    {
        const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
        if (fd < 0)
            return -1;
        sockaddr_in addr{};
        addr.sin_family = AF_INET;
        addr.sin_port = htons(cfg_.port);
        if (::inet_pton(AF_INET, cfg_.host.c_str(), &addr.sin_addr) !=
            1) {
            ::close(fd);
            return -1;
        }
        if (::connect(fd, reinterpret_cast<sockaddr *>(&addr),
                      sizeof(addr)) != 0) {
            ::close(fd);
            return -1;
        }
        const int one = 1;
        ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
        return fd;
    }

    /**
     * Blocking HELLO exchange on a fresh connection; returns the fd
     * (still blocking) or -1. The response fills shards/bound.
     */
    int
    helloConnect(std::uint32_t desired, std::uint32_t &shards,
                 std::uint32_t &bound)
    {
        const int fd = connectTcp();
        if (fd < 0)
            return -1;
        // Bound the blocking handshake: a server that accepts but
        // never answers (e.g. SIGSTOPped under chaos) must not wedge
        // the client; the re-dial path retries with backoff.
        timeval tv{};
        tv.tv_sec = 5;
        ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
        ::setsockopt(fd, SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof(tv));
        std::vector<std::uint8_t> hello;
        appendHello(hello, ++nextId_, desired);
        std::size_t off = 0;
        while (off < hello.size()) {
            const ssize_t n = ::send(fd, hello.data() + off,
                                     hello.size() - off, MSG_NOSIGNAL);
            if (n <= 0) {
                ::close(fd);
                return -1;
            }
            off += static_cast<std::size_t>(n);
        }
        FrameDecoder decoder;
        Frame frame;
        std::string error;
        for (;;) {
            switch (decoder.next(frame, error)) {
            case FrameDecoder::Status::Frame:
                if (!parseHelloOk(frame, shards, bound)) {
                    ::close(fd);
                    return -1;
                }
                return fd;
            case FrameDecoder::Status::Error:
                ::close(fd);
                return -1;
            case FrameDecoder::Status::NeedMore:
                break;
            }
            std::uint8_t buf[512];
            const ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
            if (n <= 0) {
                ::close(fd);
                return -1;
            }
            decoder.feed(buf, static_cast<std::size_t>(n));
        }
    }

    bool
    connectAll()
    {
        // Probe with a wildcard HELLO to learn the shard count, then
        // open one shard-bound connection per shard.
        std::uint32_t shards = 0;
        std::uint32_t bound = 0;
        const int probe = helloConnect(kAnyShard, shards, bound);
        if (probe < 0)
            return abort("connect/handshake with " + cfg_.host + ":" +
                         std::to_string(cfg_.port) + " failed");
        ::close(probe);
        if (shards == 0)
            return abort("server reported zero shards");
        shards_ = shards;
        conns_.resize(shards_);
        for (std::uint32_t s = 0; s < shards_; ++s) {
            std::uint32_t gotShards = 0;
            std::uint32_t gotBound = 0;
            const int fd = helloConnect(s, gotShards, gotBound);
            if (fd < 0 || gotBound != s) {
                if (fd >= 0)
                    ::close(fd);
                return abort("binding a connection to shard " +
                             std::to_string(s) + " failed");
            }
            const int flags = ::fcntl(fd, F_GETFL, 0);
            ::fcntl(fd, F_SETFL, flags | O_NONBLOCK);
            conns_[s].fd = fd;
        }
        return true;
    }

    /**
     * Flush pending output and drain readable responses once; returns
     * false when every connection is dead.
     */
    bool
    pump(int timeout_ms)
    {
        const std::uint64_t now = steadyNs();
        if (cfg_.reconnect)
            serviceReconnects(now);
        serviceDeadlines(now);
        serviceRetries(now);
        std::vector<pollfd> fds;
        std::vector<unsigned> index;
        fds.reserve(conns_.size());
        for (unsigned i = 0; i < conns_.size(); ++i) {
            auto &conn = conns_[i];
            if (conn.dead)
                continue;
            flush(conn);
            short events = POLLIN;
            if (conn.outPos < conn.out.size())
                events |= POLLOUT;
            fds.push_back(pollfd{conn.fd, events, 0});
            index.push_back(i);
        }
        if (fds.empty()) {
            if (!cfg_.reconnect)
                return false;
            // Everything is down but re-dials are pending: sleep a
            // slice so the backoff clock advances without spinning.
            ::poll(nullptr, 0, std::max(1, std::min(timeout_ms, 50)));
            return true;
        }
        const int ready =
            ::poll(fds.data(), fds.size(), timeout_ms);
        if (ready <= 0)
            return true;
        for (std::size_t i = 0; i < fds.size(); ++i) {
            auto &conn = conns_[index[i]];
            if (fds[i].revents & (POLLERR | POLLHUP))
                conn.dead = true;
            if (conn.dead)
                continue;
            if (fds[i].revents & POLLOUT)
                flush(conn);
            if (fds[i].revents & POLLIN)
                readReady(conn);
        }
        return cfg_.reconnect ||
               std::any_of(conns_.begin(), conns_.end(),
                           [](const Conn &c) { return !c.dead; });
    }

    /** Seeded, capped exponential backoff with 50–100% jitter so
     * concurrent clients decorrelate instead of re-stampeding. */
    std::uint64_t
    backoffNs(std::uint32_t attempts)
    {
        const std::uint64_t baseNs =
            std::max<std::uint64_t>(1, cfg_.backoffBaseMs) * 1000000;
        const std::uint64_t capNs =
            std::max(baseNs, cfg_.backoffMaxMs * 1000000);
        const std::uint64_t d = std::min(
            capNs, baseNs << std::min<std::uint32_t>(attempts, 16));
        return d / 2 +
               static_cast<std::uint64_t>(
                   static_cast<double>(d / 2) * jitterRng_.uniform());
    }

    /**
     * A request may be resent iff attempts remain AND (for writes)
     * it is still the newest write of every key it touches: the
     * byte-identical resend is then an idempotent overwrite, never a
     * rollback of a newer acked PUT.
     */
    bool
    canRetry(const Outstanding &op, std::uint64_t id) const
    {
        if (op.attempts > cfg_.maxRetries || op.frame.empty())
            return false;
        for (const auto &[key, payload] : op.writes) {
            const auto newest = newestWrite_.find(key);
            if (newest == newestWrite_.end() || newest->second != id)
                return false;
        }
        return true;
    }

    /** Give up on an in-flight request whose durability is unknown:
     * its writes become recovery obligations (unackedPuts). */
    void
    abandonUnknown(
        std::unordered_map<std::uint64_t, Outstanding>::iterator it)
    {
        lateIds_.insert(it->first);
        for (const auto &[key, payload] : it->second.writes)
            res_.unackedPuts[key].push_back(payload);
        ++res_.lost;
        outstanding_.erase(it);
    }

    void
    serviceDeadlines(std::uint64_t now)
    {
        while (!deadlines_.empty() && deadlines_.front().first <= now) {
            const auto [deadline, id] = deadlines_.front();
            deadlines_.pop_front();
            const auto it = outstanding_.find(id);
            // Answered already, or the deadline was superseded by a
            // resend / parked behind a scheduled retry.
            if (it == outstanding_.end() ||
                it->second.deadlineAbs != deadline)
                continue;
            ++res_.timeouts;
            if (canRetry(it->second, id)) {
                it->second.deadlineAbs = 0;
                retryQueue_.push_back(
                    {now + backoffNs(it->second.attempts), id});
            } else {
                abandonUnknown(it);
            }
        }
    }

    void
    serviceRetries(std::uint64_t now)
    {
        std::vector<std::uint64_t> due;
        for (std::size_t i = 0; i < retryQueue_.size();) {
            if (retryQueue_[i].first <= now) {
                due.push_back(retryQueue_[i].second);
                retryQueue_[i] = retryQueue_.back();
                retryQueue_.pop_back();
            } else {
                ++i;
            }
        }
        for (const std::uint64_t id : due)
            resendNow(id, now);
    }

    /** Byte-identical resend under the same request id. */
    void
    resendNow(std::uint64_t id, std::uint64_t now)
    {
        const auto it = outstanding_.find(id);
        if (it == outstanding_.end())
            return;
        Outstanding &op = it->second;
        Conn &conn = conns_[op.shard];
        if (conn.dead) {
            if (cfg_.reconnect) {
                // Park the retry until the re-dial lands.
                retryQueue_.push_back(
                    {now + backoffNs(op.attempts), id});
            } else {
                abandonUnknown(it);
            }
            return;
        }
        conn.out.insert(conn.out.end(), op.frame.begin(),
                        op.frame.end());
        ++op.attempts;
        ++res_.retries;
        op.deadlineAbs =
            cfg_.requestTimeoutMs != 0
                ? now + cfg_.requestTimeoutMs * 1000000
                : 0;
        if (op.deadlineAbs != 0)
            deadlines_.push_back({op.deadlineAbs, id});
    }

    void
    serviceReconnects(std::uint64_t now)
    {
        for (std::uint32_t s = 0; s < conns_.size(); ++s) {
            Conn &conn = conns_[s];
            if (!conn.dead)
                continue;
            res_.connectionLost = true;
            if (conn.fd >= 0) {
                ::close(conn.fd);
                conn.fd = -1;
            }
            if (conn.reconnectAtNs == 0) {
                conn.reconnectAtNs =
                    now + backoffNs(conn.reconnectAttempts);
                continue;
            }
            if (now < conn.reconnectAtNs)
                continue;
            std::uint32_t shards = 0;
            std::uint32_t bound = 0;
            const int fd = helloConnect(s, shards, bound);
            if (fd < 0 || bound != s) {
                if (fd >= 0)
                    ::close(fd);
                ++conn.reconnectAttempts;
                conn.reconnectAtNs =
                    now + backoffNs(conn.reconnectAttempts);
                continue;
            }
            const int flags = ::fcntl(fd, F_GETFL, 0);
            ::fcntl(fd, F_SETFL, flags | O_NONBLOCK);
            // Unsent output dies with the old socket (a partial frame
            // may already be on the wire — resuming mid-frame would
            // poison the stream); in-flight requests resolve via the
            // deadline/retry path.
            conn.fd = fd;
            conn.decoder = FrameDecoder();
            conn.out.clear();
            conn.outPos = 0;
            conn.dead = false;
            conn.reconnectAtNs = 0;
            conn.reconnectAttempts = 0;
            ++res_.reconnects;
        }
    }

    void
    flush(Conn &conn)
    {
        while (conn.outPos < conn.out.size()) {
            const ssize_t n =
                ::send(conn.fd, conn.out.data() + conn.outPos,
                       conn.out.size() - conn.outPos, MSG_NOSIGNAL);
            if (n > 0) {
                conn.outPos += static_cast<std::size_t>(n);
                continue;
            }
            if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK))
                return;
            conn.dead = true;
            return;
        }
        conn.out.clear();
        conn.outPos = 0;
    }

    void
    readReady(Conn &conn)
    {
        std::uint8_t buf[64 * 1024];
        for (;;) {
            const ssize_t n = ::recv(conn.fd, buf, sizeof(buf), 0);
            if (n > 0) {
                conn.decoder.feed(buf, static_cast<std::size_t>(n));
                if (static_cast<std::size_t>(n) < sizeof(buf))
                    break;
                continue;
            }
            if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK))
                break;
            conn.dead = true;
            break;
        }
        Frame frame;
        std::string error;
        for (;;) {
            const auto status = conn.decoder.next(frame, error);
            if (status == FrameDecoder::Status::NeedMore)
                break;
            if (status == FrameDecoder::Status::Error) {
                ++res_.protocolErrors;
                conn.dead = true;
                break;
            }
            handleResponse(frame);
        }
    }

    void
    handleResponse(const Frame &frame)
    {
        const auto it = outstanding_.find(frame.id);
        if (it == outstanding_.end()) {
            // Late/duplicate answer to a request we retried or gave
            // up on — expected under chaos, not a protocol violation.
            if (lateIds_.count(frame.id))
                return;
            ++res_.protocolErrors;
            return;
        }
        if (frame.op == Op::Busy) {
            // Overload shed: the server executed nothing. Retry after
            // backoff while attempts remain; else the request failed
            // definitively (no durability ambiguity).
            ++res_.busyResponses;
            Outstanding &op = it->second;
            if (canRetry(op, frame.id)) {
                op.deadlineAbs = 0;
                retryQueue_.push_back(
                    {steadyNs() + backoffNs(op.attempts), frame.id});
            } else {
                ++res_.errors;
                lateIds_.insert(frame.id);
                outstanding_.erase(it);
            }
            return;
        }
        const Outstanding op = std::move(it->second);
        outstanding_.erase(it);
        // A retried request may be acked more than once (the retry
        // was spurious); remember the id so duplicates are ignored.
        if (op.attempts > 1)
            lateIds_.insert(frame.id);

        bool ok = false;
        switch (frame.op) {
        case Op::Value:
        case Op::Ok:
            ok = true;
            break;
        case Op::NotFound:
            ok = true;
            ++res_.notFound;
            break;
        case Op::Err:
            ++res_.errors;
            break;
        default:
            ++res_.protocolErrors;
            return;
        }
        if (!ok)
            return;
        for (const auto &[key, payload] : op.writes) {
            res_.ackedPuts[key] = payload;
            res_.ackedPutHistory[key].push_back(payload);
        }
        // Load-phase batches are plumbing, not measured traffic.
        if (op.kind == Outstanding::Kind::Load)
            return;
        ++res_.acked;
        const std::uint64_t now = steadyNs();
        if (op.traceId != 0 && obs::Tracer::global().enabled())
            obs::Tracer::global().record("client_rtt", "client",
                                         op.sentNs, now, op.traceId);
        const std::uint64_t intendedAbs = origin_ + op.intendedNs;
        const std::uint64_t latency =
            now > intendedAbs ? now - intendedAbs : 0;
        if (op.kind == Outstanding::Kind::Read)
            res_.readLatency.record(latency);
        else
            res_.updateLatency.record(latency);
    }

    bool
    loadKeyspace()
    {
        // Shard-grouped BATCH frames so each frame is one same-shard
        // run (one commit fence) on the server.
        std::vector<std::vector<kv::KvKey>> byShard(shards_);
        for (kv::KvKey key = 1; key <= cfg_.workload.keys; ++key)
            byShard[kv::shardOfKey(key, shards_)].push_back(key);
        const std::size_t batch = std::max<std::size_t>(
            1, std::min(cfg_.loadBatch, kMaxBatchEntries));
        for (std::uint32_t s = 0; s < shards_; ++s) {
            const auto &keys = byShard[s];
            for (std::size_t off = 0; off < keys.size();
                 off += batch) {
                const std::size_t n =
                    std::min(batch, keys.size() - off);
                std::vector<std::pair<kv::KvKey, kv::KvValue>> items;
                items.reserve(n);
                Outstanding op;
                op.kind = Outstanding::Kind::Load;
                op.shard = s;
                for (std::size_t i = 0; i < n; ++i) {
                    const kv::KvKey key = keys[off + i];
                    items.emplace_back(key,
                                       kv::KvValue::tagged(key, 0));
                    op.writes.emplace_back(key, 0);
                }
                const std::uint64_t id = ++nextId_;
                scratch_.clear();
                appendBatch(scratch_, id, items);
                conns_[s].out.insert(conns_[s].out.end(),
                                     scratch_.begin(), scratch_.end());
                // Load batches keep their own phase-level deadline
                // (below) but are Busy-retryable like timed traffic.
                if (cfg_.maxRetries > 0) {
                    op.frame = scratch_;
                    for (const auto &[key, payload] : op.writes)
                        newestWrite_[key] = id;
                }
                outstanding_.emplace(id, std::move(op));
            }
        }
        // Pump until every load batch is acked.
        const std::uint64_t deadline =
            steadyNs() + 60ull * 1000 * 1000 * 1000;
        while (!outstanding_.empty()) {
            if (steadyNs() > deadline)
                return abort("keyspace load timed out");
            if (!pump(100))
                return abort("connections died during keyspace load");
        }
        return true;
    }

    void
    timedRun()
    {
        // Fix the entire arrival timeline up front: intended
        // departure offsets in ns from the origin.
        const std::uint64_t total = static_cast<std::uint64_t>(
            std::llround(cfg_.targetQps * cfg_.seconds));
        std::vector<std::uint64_t> intended;
        intended.reserve(total);
        const double meanGapNs = 1e9 / cfg_.targetQps;
        Rng arrivals(cfg_.seed ^ 0xA441A441A441A441ull);
        double t = 0.0;
        for (std::uint64_t i = 0; i < total; ++i) {
            if (cfg_.arrival == Arrival::Fixed) {
                intended.push_back(static_cast<std::uint64_t>(
                    static_cast<double>(i) * meanGapNs));
            } else {
                t += -meanGapNs *
                     std::log1p(-arrivals.uniform());
                intended.push_back(
                    static_cast<std::uint64_t>(t));
            }
        }

        kv::OpGenerator gen(
            cfg_.workload,
            zipf_ ? zipf_.get() : buildZipf(),
            kv::OpGenerator::workerSeed(cfg_.seed, 0));

        origin_ = steadyNs();
        const std::uint64_t timelineEndAbs =
            origin_ +
            (total ? intended.back() : 0) +
            static_cast<std::uint64_t>(cfg_.drainSeconds * 1e9);

        std::uint64_t nextOp = 0;
        bool alive = true;
        while (alive && (nextOp < total || !outstanding_.empty())) {
            const std::uint64_t now = steadyNs();
            if (now > timelineEndAbs)
                break;
            // Departures whose intended time has arrived leave NOW,
            // regardless of outstanding responses (open loop).
            while (nextOp < total &&
                   origin_ + intended[nextOp] <= now) {
                enqueue(gen.next(), intended[nextOp], now);
                ++nextOp;
            }
            int timeout_ms = 100;
            if (nextOp < total) {
                const std::uint64_t at = origin_ + intended[nextOp];
                timeout_ms =
                    at <= now
                        ? 0
                        : static_cast<int>(std::min<std::uint64_t>(
                              (at - now) / 1000000, 100));
            }
            alive = pump(timeout_ms);
        }

        res_.scheduled = total;
        res_.lost += outstanding_.size();
        for (const auto &[id, op] : outstanding_) {
            for (const auto &[key, payload] : op.writes)
                res_.unackedPuts[key].push_back(payload);
        }
        res_.connectionLost =
            res_.connectionLost ||
            std::any_of(conns_.begin(), conns_.end(),
                        [](const Conn &c) { return c.dead; });
        outstanding_.clear();
        res_.wallSeconds =
            static_cast<double>(steadyNs() - origin_) / 1e9;
        res_.achievedQps =
            res_.wallSeconds > 0
                ? static_cast<double>(res_.acked) / res_.wallSeconds
                : 0.0;
    }

    void
    enqueue(kv::WorkloadOp op, std::uint64_t intendedNs,
            std::uint64_t now)
    {
        const std::uint64_t id = ++nextId_;
        Outstanding record;
        record.intendedNs = intendedNs;
        record.sentNs = now;
        TraceExt ext;
        const TraceExt *extp =
            drawTraceExt(ext) ? &ext : nullptr;
        record.traceId = extp ? ext.traceId : 0;
        scratch_.clear();
        switch (op.kind) {
        case kv::WorkloadOp::Kind::Get:
            record.kind = Outstanding::Kind::Read;
            record.shard = kv::shardOfKey(op.key, shards_);
            appendGet(scratch_, id, op.key, extp);
            break;
        case kv::WorkloadOp::Kind::Put:
            record.kind = Outstanding::Kind::Update;
            record.shard = kv::shardOfKey(op.key, shards_);
            record.writes.emplace_back(op.key, op.value.words[1]);
            appendPut(scratch_, id, op.key, op.value,
                      drawStrictFlag(), extp);
            break;
        case kv::WorkloadOp::Kind::MultiPut: {
            record.kind = Outstanding::Kind::Update;
            for (const auto &[key, value] : op.batch)
                record.writes.emplace_back(key, value.words[1]);
            // A batch frame lands on one connection; misrouted
            // members split the server-side run (correct, just more
            // fences), so route by the first key's shard.
            record.shard =
                kv::shardOfKey(op.batch.front().first, shards_);
            appendBatch(scratch_, id, op.batch, drawStrictFlag(),
                        extp);
            break;
        }
        }
        Conn &conn = conns_[record.shard];
        conn.out.insert(conn.out.end(), scratch_.begin(),
                        scratch_.end());
        if (cfg_.maxRetries > 0) {
            record.frame = scratch_;
            for (const auto &[key, payload] : record.writes)
                newestWrite_[key] = id;
        }
        if (cfg_.requestTimeoutMs != 0) {
            record.deadlineAbs =
                now + cfg_.requestTimeoutMs * 1000000;
            deadlines_.push_back({record.deadlineAbs, id});
        }
        const std::uint64_t intendedAbs = origin_ + intendedNs;
        // client_send spans the departure delay: intended departure
        // to the socket enqueue (the open-loop send lag).
        if (record.traceId != 0 && obs::Tracer::global().enabled())
            obs::Tracer::global().record(
                "client_send", "client",
                std::min(intendedAbs, now), now, record.traceId);
        outstanding_.emplace(id, std::move(record));
        ++res_.sent;
        res_.sendLag.record(now > intendedAbs ? now - intendedAbs
                                              : 0);
    }

    /** kFlagStrict for a seeded strictFraction of mutation frames. */
    std::uint8_t
    drawStrictFlag()
    {
        if (cfg_.strictFraction <= 0.0)
            return 0;
        if (cfg_.strictFraction < 1.0 &&
            strictRng_.uniform() >= cfg_.strictFraction)
            return 0;
        ++res_.strictSent;
        return kFlagStrict;
    }

    /**
     * Trace extension for a seeded traceSample of requests; fills
     * @p ext and returns true when this request is traced.
     */
    bool
    drawTraceExt(TraceExt &ext)
    {
        if (cfg_.traceSample <= 0.0)
            return false;
        if (cfg_.traceSample < 1.0 &&
            traceRng_.uniform() >= cfg_.traceSample)
            return false;
        ext.traceId = traceRng_.next() | 1; // 0 means untraced
        ext.sampled = true;
        ++res_.tracedSent;
        return true;
    }

    const kv::ZipfianGenerator *
    buildZipf()
    {
        if (cfg_.workload.dist != kv::KeyDist::Zipfian)
            return nullptr;
        zipf_ = std::make_unique<kv::ZipfianGenerator>(
            cfg_.workload.keys, cfg_.workload.zipfTheta);
        return zipf_.get();
    }

    void
    publishMetrics()
    {
        auto &metrics = LoadgenMetrics::instance();
        metrics.scheduled.add(res_.scheduled);
        metrics.sent.add(res_.sent);
        metrics.acked.add(res_.acked);
        metrics.errors.add(res_.errors);
        metrics.notFound.add(res_.notFound);
        metrics.lost.add(res_.lost);
        metrics.protocolErrors.add(res_.protocolErrors);
        metrics.tracedSent.add(res_.tracedSent);
        metrics.timeouts.add(res_.timeouts);
        metrics.retries.add(res_.retries);
        metrics.reconnects.add(res_.reconnects);
        metrics.busyResponses.add(res_.busyResponses);
        metrics.readLatency.mergeFrom(res_.readLatency);
        metrics.updateLatency.mergeFrom(res_.updateLatency);
        metrics.sendLag.mergeFrom(res_.sendLag);
    }

    LoadgenConfig cfg_;
    LoadgenResult res_;
    std::vector<Conn> conns_;
    std::uint32_t shards_ = 0;
    std::uint64_t nextId_ = 0;
    std::uint64_t origin_ = 0;
    std::unordered_map<std::uint64_t, Outstanding> outstanding_;
    std::unique_ptr<kv::ZipfianGenerator> zipf_;
    /** Frame-encoding scratch (reused per request). */
    std::vector<std::uint8_t> scratch_;
    /** (deadlineAbs, id) in send order — deadlines are monotonic. */
    std::deque<std::pair<std::uint64_t, std::uint64_t>> deadlines_;
    /** (dueAbs, id) of scheduled resends (unordered, scanned). */
    std::vector<std::pair<std::uint64_t, std::uint64_t>> retryQueue_;
    /** Ids whose late/duplicate responses must be ignored. */
    std::unordered_set<std::uint64_t> lateIds_;
    /** Key -> id of the newest write touching it (retry guard). */
    std::unordered_map<kv::KvKey, std::uint64_t> newestWrite_;
    Rng strictRng_{cfg_.seed ^ 0x57121C7F1A6ull};
    Rng traceRng_{cfg_.seed ^ 0x712ACE5A3B1Dull};
    Rng jitterRng_{cfg_.seed ^ 0xBACC0FF5EEDull};
};

} // namespace

const char *
arrivalName(Arrival arrival)
{
    switch (arrival) {
    case Arrival::Fixed:
        return "fixed";
    case Arrival::Poisson:
        return "poisson";
    }
    return "?";
}

LoadgenResult
runOpenLoop(const LoadgenConfig &config)
{
    SPECPMT_ASSERT(config.targetQps > 0);
    OpenLoopRun run(config);
    return run.run();
}

} // namespace specpmt::net
