/**
 * @file
 * Trace-span API: lightweight duration events for the phases the
 * paper's cost model cares about — transaction begin→commit, flush
 * batches, reclaim cycles, recovery phases, crash-explorer replay
 * shards — written out as Chrome trace-event JSON that Perfetto and
 * chrome://tracing load directly.
 *
 * Usage (the macro forms are the public API):
 *
 *     void SpecTx::reclaimCycle() {
 *         SPECPMT_TRACE_SPAN("reclaim_cycle", "reclaim");
 *         ...
 *     }   // span closes when the scope exits
 *
 * For spans that don't nest lexically (a transaction opened in
 * txBegin and closed in txCommit), use the split form:
 *
 *     std::uint64_t t0 = SPECPMT_TRACE_BEGIN();
 *     ...
 *     SPECPMT_TRACE_END("tx", "tx", t0);
 *
 * Tracing is OFF by default at runtime: every record path first tests
 * one relaxed atomic flag, so instrumented hot paths cost a predicted
 * branch when idle. Tracer::enable() arms collection into per-thread
 * ring buffers (fixed capacity, oldest events dropped, drop count
 * reported) so tracing never allocates on the record path after a
 * thread's first event.
 *
 * Compile-time kill switch: building with -DSPECPMT_TRACING_DISABLED
 * (CMake option SPECPMT_ENABLE_TRACING=OFF) expands the macros to
 * `((void)0)`-equivalents, so a tracing-free binary carries no check
 * at all. The API surface is macros precisely so the disabled build
 * compiles them away without ODR games.
 */

#ifndef SPECPMT_OBS_TRACE_HH
#define SPECPMT_OBS_TRACE_HH

#include <atomic>
#include <cstdint>
#include <string>

namespace specpmt::obs
{

/**
 * One numeric argument attached to a span, e.g. {"log_bytes", 512}.
 * The key must be a string literal (stored as a pointer, like span
 * names); values serialize into the event's Chrome-JSON "args"
 * object alongside the correlation id.
 */
struct TraceArg
{
    const char *key;
    std::uint64_t value;
};

/**
 * Collector for trace events; see file comment. One process-wide
 * instance (Tracer::global()) backs the macros.
 */
class Tracer
{
  public:
    /** Events kept per thread; older events are dropped, counted. */
    static constexpr std::size_t kRingCapacity = 1u << 14;

    /** Most TraceArgs one event can carry (extras are dropped). */
    static constexpr unsigned kMaxTraceArgs = 8;

    static Tracer &global();

    /** Arm collection; cheap to call when already enabled. */
    void enable();

    /** Disarm collection; buffered events stay until write/clear. */
    void disable();

    bool
    enabled() const
    {
        return enabled_.load(std::memory_order_relaxed);
    }

    /**
     * Record a completed span. @p name and @p category must be
     * string literals (stored as pointers, never copied). Times are
     * nanoseconds from the steady clock (see now()). A nonzero @p id
     * (e.g. a request id from tail sampling) is carried through to
     * the serialized event as `"args":{"id":N}` so a slow request's
     * spans can be correlated across threads.
     */
    void
    record(const char *name, const char *category,
           std::uint64_t startNs, std::uint64_t endNs,
           std::uint64_t id = 0)
    {
        record(name, category, startNs, endNs, id, nullptr, 0);
    }

    /**
     * As above, plus up to kMaxTraceArgs numeric arguments (a PM
     * cost vector, a batch size, ...) serialized into the event's
     * "args" object. @p args keys must be string literals.
     */
    void record(const char *name, const char *category,
                std::uint64_t startNs, std::uint64_t endNs,
                std::uint64_t id, const TraceArg *args,
                unsigned numArgs);

    /** Steady-clock nanoseconds; the time base for record(). */
    static std::uint64_t now();

    /** Total events dropped to ring-buffer wraparound. */
    std::uint64_t droppedEvents() const;

    /** Events currently buffered across all threads. */
    std::size_t bufferedEvents() const;

    /**
     * Serialize all buffered events as Chrome trace-event JSON
     * (`{"traceEvents": [...]}`, "ph":"X" complete events with µs
     * timestamps). With a nonzero @p sinceNs only spans ending at or
     * after that steady-clock instant are emitted — the `/trace?ms=N`
     * endpoint serves the last N milliseconds this way without
     * copying the rings.
     */
    std::string toChromeJson(std::uint64_t sinceNs = 0) const;

    /** toChromeJson() to @p path; false on IO error. */
    bool writeChromeJson(const std::string &path) const;

    /** Drop all buffered events and the drop counter. */
    void clear();

  private:
    struct ThreadBuffer;

    Tracer() = default;

    /** The calling thread's buffer, registered on first use. */
    ThreadBuffer &threadBuffer();

    std::atomic<bool> enabled_{false};
    /** Lock-free singly linked list of per-thread buffers; buffers
     *  are never unlinked (threads are few and long-lived here). */
    std::atomic<ThreadBuffer *> buffers_{nullptr};
};

/** RAII helper behind SPECPMT_TRACE_SPAN. */
class ScopedSpan
{
  public:
    ScopedSpan(const char *name, const char *category)
        : name_(name), category_(category),
          startNs_(Tracer::global().enabled() ? Tracer::now() : 0)
    {
    }

    ScopedSpan(const ScopedSpan &) = delete;
    ScopedSpan &operator=(const ScopedSpan &) = delete;

    ~ScopedSpan()
    {
        if (startNs_ != 0 && Tracer::global().enabled())
            Tracer::global().record(name_, category_, startNs_,
                                    Tracer::now());
    }

  private:
    const char *name_;
    const char *category_;
    std::uint64_t startNs_;
};

} // namespace specpmt::obs

#ifdef SPECPMT_TRACING_DISABLED

#define SPECPMT_TRACE_SPAN(name, category) ((void)0)
#define SPECPMT_TRACE_BEGIN() (std::uint64_t{0})
#define SPECPMT_TRACE_END(name, category, startNs) ((void)(startNs))

#else

#define SPECPMT_TRACE_CONCAT2(a, b) a##b
#define SPECPMT_TRACE_CONCAT(a, b) SPECPMT_TRACE_CONCAT2(a, b)

/** Open a span covering the enclosing scope. */
#define SPECPMT_TRACE_SPAN(name, category)                              \
    ::specpmt::obs::ScopedSpan SPECPMT_TRACE_CONCAT(                    \
        specpmtTraceSpan_, __LINE__){(name), (category)}

/** Start time for a split span; 0 when tracing is off right now. */
#define SPECPMT_TRACE_BEGIN()                                           \
    (::specpmt::obs::Tracer::global().enabled()                         \
         ? ::specpmt::obs::Tracer::now()                                \
         : std::uint64_t{0})

/** Close a split span opened with SPECPMT_TRACE_BEGIN. */
#define SPECPMT_TRACE_END(name, category, startNs)                      \
    do {                                                                \
        std::uint64_t specpmtTraceStart = (startNs);                    \
        if (specpmtTraceStart != 0 &&                                   \
            ::specpmt::obs::Tracer::global().enabled())                 \
            ::specpmt::obs::Tracer::global().record(                    \
                (name), (category), specpmtTraceStart,                  \
                ::specpmt::obs::Tracer::now());                         \
    } while (0)

#endif // SPECPMT_TRACING_DISABLED

#endif // SPECPMT_OBS_TRACE_HH
