/**
 * @file
 * Thread-local storage for the request trace context.
 */

#include "obs/trace_context.hh"

namespace specpmt::obs
{

TraceContext &
traceContext()
{
    // One context per thread for the thread's whole lifetime. POD-ish
    // (no dynamic members), so thread exit needs no ordering against
    // other TLS destructors.
    thread_local TraceContext ctx;
    return ctx;
}

} // namespace specpmt::obs
