/**
 * @file
 * Live telemetry plane: a minimal HTTP/1.1 admin endpoint that makes
 * a running speckv server observable without stopping it. The rest of
 * the obs layer was artifact-oriented — metrics and traces reached
 * disk only at clean exit — so a live server was a black box; this
 * server exposes the same Registry/Tracer state over four GET routes:
 *
 *   /metrics      Prometheus text exposition of a live snapshot
 *                 (torn-free per sample, same contract as scraping);
 *   /stats.json   the snapshot's JSON form (counters/gauges/
 *                 histograms), pipeable into `specstat dump -`;
 *   /healthz      liveness: per-shard loop heartbeat age and sealed-
 *                 epoch lag from a caller-supplied health source;
 *                 returns 503 when any shard is stalled;
 *   /trace?ms=N   Chrome trace-event JSON of spans from the last N
 *                 milliseconds (default 1000, capped at
 *                 kTraceWindowMaxMs).
 *
 * Single dedicated thread, poll()-based, request/response only
 * (Connection: close) with small bounded buffers — deliberately not a
 * web server. The data plane never blocks on it: every response is
 * built from lock-striped snapshots the hot paths already tolerate.
 * Malformed, oversized, or stalled requests are dropped on a timeout
 * so a misbehaving scraper cannot wedge the responder.
 */

#ifndef SPECPMT_OBS_TELEMETRY_SERVER_HH
#define SPECPMT_OBS_TELEMETRY_SERVER_HH

#include <cstdint>
#include <functional>
#include <string>
#include <thread>
#include <vector>

namespace specpmt::obs
{

class Registry;
class Tracer;

/**
 * Largest `/trace?ms=N` window honored: one minute. Anything larger
 * is clamped, not rejected — the per-thread rings hold 2^14 spans
 * each, so windows beyond this only replay ring wraparound noise and
 * bloat the response. Documented here so scrapers can plan polling
 * cadence against a stable contract.
 */
constexpr std::uint64_t kTraceWindowMaxMs = 60000;

/** One shard's liveness sample for /healthz. */
struct ShardHealth
{
    /** Shard / event-loop index. */
    unsigned shard = 0;
    /** Microseconds since the loop's last heartbeat. */
    std::uint64_t heartbeatAgeUs = 0;
    /** Relaxed commits issued but not yet covered by a sealed epoch. */
    std::uint64_t sealLag = 0;
    /** False when the heartbeat is older than the stall threshold. */
    bool live = true;
    /** The shard refuses mutations (read-only degraded mode). */
    bool readOnly = false;
    /** Read-only, media-fault aborts, or quarantined segments: the
     * shard is serving but impaired. Degraded is NOT dead — /healthz
     * stays 200 so load balancers keep routing the working reads. */
    bool degraded = false;
    /** Log segments quarantined as media-corrupt by recovery. */
    std::uint64_t quarantined = 0;
    /** Transactions aborted cleanly on media faults. */
    std::uint64_t mediaAborts = 0;
};

/** Callback producing the current per-shard health; may be empty. */
using HealthSource = std::function<std::vector<ShardHealth>()>;

/** Construction parameters for TelemetryServer. */
struct TelemetryConfig
{
    /** Listen address (admin plane: default loopback only). */
    std::string bindAddress = "127.0.0.1";
    /** TCP port; 0 picks an ephemeral port (see port()). */
    std::uint16_t port = 0;
    /** Metrics source; nullptr means Registry::global(). */
    Registry *registry = nullptr;
    /** Trace source; nullptr means Tracer::global(). */
    Tracer *tracer = nullptr;
    /** Health source for /healthz; empty reports no shards, 200. */
    HealthSource health;
    /** Request-head cap; longer requests get 400 and a close. */
    std::size_t maxRequestBytes = 8192;
    /** Idle connections are dropped after this long. */
    int idleTimeoutMs = 5000;
};

/**
 * The admin HTTP endpoint; see file comment. start() binds and
 * launches the serving thread; stop() joins it. Lifetime pattern
 * matches net::NetServer.
 */
class TelemetryServer
{
  public:
    explicit TelemetryServer(TelemetryConfig config);
    ~TelemetryServer();

    TelemetryServer(const TelemetryServer &) = delete;
    TelemetryServer &operator=(const TelemetryServer &) = delete;

    /** Bind + listen + launch the thread; false on bind failure. */
    bool start();

    /** Stop serving and join; idempotent. */
    void stop();

    /** Bound port (resolves ephemeral requests); 0 before start(). */
    std::uint16_t port() const { return boundPort_; }

    /** True between a successful start() and stop(). */
    bool running() const { return running_; }

  private:
    struct Conn;

    void serveLoop();
    /** Build the full response bytes for one parsed request head. */
    std::string respond(const std::string &head) const;

    TelemetryConfig config_;
    int listenFd_ = -1;
    int wakeFd_ = -1;
    std::uint16_t boundPort_ = 0;
    bool running_ = false;
    std::thread thread_;
};

} // namespace specpmt::obs

#endif // SPECPMT_OBS_TELEMETRY_SERVER_HH
