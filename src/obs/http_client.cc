#include "obs/http_client.hh"

#include <arpa/inet.h>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cctype>

namespace specpmt::obs
{

namespace
{

using Clock = std::chrono::steady_clock;

int remainingMs(Clock::time_point deadline)
{
    auto left = std::chrono::duration_cast<std::chrono::milliseconds>(
                    deadline - Clock::now())
                    .count();
    return left < 0 ? 0 : static_cast<int>(std::min<long long>(left, 60000));
}

bool waitFd(int fd, short events, Clock::time_point deadline,
            std::string &error)
{
    pollfd pfd{fd, events, 0};
    int ms = remainingMs(deadline);
    if (ms == 0)
    {
        error = "timed out";
        return false;
    }
    int rc = ::poll(&pfd, 1, ms);
    if (rc < 0)
    {
        error = std::string{"poll: "} + std::strerror(errno);
        return false;
    }
    if (rc == 0)
    {
        error = "timed out";
        return false;
    }
    return true;
}

/** Case-insensitive prefix match for header names. */
bool headerIs(std::string_view line, std::string_view name)
{
    if (line.size() < name.size())
        return false;
    for (std::size_t i = 0; i < name.size(); ++i)
        if (std::tolower(static_cast<unsigned char>(line[i])) !=
            std::tolower(static_cast<unsigned char>(name[i])))
            return false;
    return true;
}

std::string_view trimView(std::string_view v)
{
    while (!v.empty() && std::isspace(static_cast<unsigned char>(v.front())))
        v.remove_prefix(1);
    while (!v.empty() && std::isspace(static_cast<unsigned char>(v.back())))
        v.remove_suffix(1);
    return v;
}

} // namespace

bool httpGet(const std::string &host, std::uint16_t port,
             const std::string &path, HttpResponse &out, std::string &error,
             int timeoutMs)
{
    out = HttpResponse{};
    error.clear();
    const auto deadline = Clock::now() + std::chrono::milliseconds(timeoutMs);

    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(port);
    if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1)
    {
        // The telemetry plane binds numeric loopback addresses; accept the
        // common aliases without pulling in resolver machinery.
        if (host == "localhost")
            addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
        else
        {
            error = "unsupported host (numeric IPv4 or localhost only): " +
                    host;
            return false;
        }
    }

    int fd = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC | SOCK_NONBLOCK, 0);
    if (fd < 0)
    {
        error = std::string{"socket: "} + std::strerror(errno);
        return false;
    }
    struct FdGuard
    {
        int fd;
        ~FdGuard() { ::close(fd); }
    } guard{fd};

    if (::connect(fd, reinterpret_cast<sockaddr *>(&addr), sizeof(addr)) < 0)
    {
        if (errno != EINPROGRESS)
        {
            error = std::string{"connect: "} + std::strerror(errno);
            return false;
        }
        if (!waitFd(fd, POLLOUT, deadline, error))
            return false;
        int soErr = 0;
        socklen_t len = sizeof(soErr);
        if (::getsockopt(fd, SOL_SOCKET, SO_ERROR, &soErr, &len) < 0 ||
            soErr != 0)
        {
            error = std::string{"connect: "} +
                    std::strerror(soErr != 0 ? soErr : errno);
            return false;
        }
    }

    std::string request = "GET " + path + " HTTP/1.1\r\nHost: " + host +
                          "\r\nConnection: close\r\nAccept: */*\r\n\r\n";
    std::size_t sent = 0;
    while (sent < request.size())
    {
        ssize_t n = ::send(fd, request.data() + sent, request.size() - sent,
                           MSG_NOSIGNAL);
        if (n > 0)
        {
            sent += static_cast<std::size_t>(n);
            continue;
        }
        if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK))
        {
            if (!waitFd(fd, POLLOUT, deadline, error))
                return false;
            continue;
        }
        if (n < 0 && errno == EINTR)
            continue;
        error = std::string{"send: "} + std::strerror(errno);
        return false;
    }

    // Connection: close — read to EOF, then parse. Bounded so a
    // misbehaving server cannot balloon memory.
    constexpr std::size_t kMaxResponse = 64u << 20;
    std::string raw;
    char buf[16384];
    for (;;)
    {
        ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
        if (n > 0)
        {
            raw.append(buf, static_cast<std::size_t>(n));
            if (raw.size() > kMaxResponse)
            {
                error = "response too large";
                return false;
            }
            continue;
        }
        if (n == 0)
            break;
        if (errno == EAGAIN || errno == EWOULDBLOCK)
        {
            if (!waitFd(fd, POLLIN, deadline, error))
                return false;
            continue;
        }
        if (errno == EINTR)
            continue;
        error = std::string{"recv: "} + std::strerror(errno);
        return false;
    }

    std::size_t headerEnd = raw.find("\r\n\r\n");
    std::size_t bodyStart;
    if (headerEnd != std::string::npos)
        bodyStart = headerEnd + 4;
    else
    {
        headerEnd = raw.find("\n\n");
        if (headerEnd == std::string::npos)
        {
            error = "malformed response: no header terminator";
            return false;
        }
        bodyStart = headerEnd + 2;
    }

    std::string_view head{raw.data(), headerEnd};
    std::size_t lineEnd = head.find('\n');
    std::string_view statusLine =
        trimView(head.substr(0, lineEnd == std::string_view::npos
                                    ? head.size()
                                    : lineEnd));
    // "HTTP/1.1 200 OK"
    std::size_t sp = statusLine.find(' ');
    if (sp == std::string_view::npos ||
        statusLine.substr(0, 5) != std::string_view{"HTTP/"})
    {
        error = "malformed status line";
        return false;
    }
    std::string_view codeView = trimView(statusLine.substr(sp + 1));
    int code = 0;
    std::size_t digits = 0;
    while (digits < codeView.size() &&
           std::isdigit(static_cast<unsigned char>(codeView[digits])))
    {
        code = code * 10 + (codeView[digits] - '0');
        ++digits;
    }
    if (digits != 3)
    {
        error = "malformed status code";
        return false;
    }
    out.status = code;

    std::size_t pos = lineEnd == std::string_view::npos ? head.size()
                                                        : lineEnd + 1;
    while (pos < head.size())
    {
        std::size_t next = head.find('\n', pos);
        std::string_view line = trimView(
            head.substr(pos, next == std::string_view::npos ? head.size() - pos
                                                            : next - pos));
        if (headerIs(line, "content-type:"))
            out.contentType = std::string{
                trimView(line.substr(std::string_view{"content-type:"}.size()))};
        if (next == std::string_view::npos)
            break;
        pos = next + 1;
    }

    out.body = raw.substr(bodyStart);
    return true;
}

bool parseHttpUrl(std::string_view url, std::string &host,
                  std::uint16_t &port, std::string &path)
{
    constexpr std::string_view kScheme = "http://";
    if (url.substr(0, kScheme.size()) != kScheme)
        return false;
    url.remove_prefix(kScheme.size());
    std::size_t slash = url.find('/');
    std::string_view authority =
        slash == std::string_view::npos ? url : url.substr(0, slash);
    path = slash == std::string_view::npos ? "/"
                                           : std::string{url.substr(slash)};
    if (authority.empty())
        return false;
    std::size_t colon = authority.rfind(':');
    if (colon == std::string_view::npos)
    {
        host = std::string{authority};
        port = 80;
        return true;
    }
    std::string_view portView = authority.substr(colon + 1);
    if (portView.empty())
        return false;
    unsigned long value = 0;
    for (char c : portView)
    {
        if (!std::isdigit(static_cast<unsigned char>(c)))
            return false;
        value = value * 10 + static_cast<unsigned long>(c - '0');
        if (value > 65535)
            return false;
    }
    host = std::string{authority.substr(0, colon)};
    port = static_cast<std::uint16_t>(value);
    return !host.empty();
}

} // namespace specpmt::obs
