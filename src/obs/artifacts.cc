#include "obs/artifacts.hh"

#include "obs/metrics.hh"
#include "obs/trace.hh"

namespace specpmt::obs
{

namespace
{

bool
endsWith(std::string_view s, std::string_view suffix)
{
    return s.size() >= suffix.size() &&
           s.substr(s.size() - suffix.size()) == suffix;
}

} // namespace

bool
OutputFlags::accept(std::string_view arg)
{
    constexpr std::string_view kMetrics = "--metrics-out=";
    constexpr std::string_view kTrace = "--trace-out=";
    if (arg.rfind(kMetrics, 0) == 0) {
        metricsPath = std::string(arg.substr(kMetrics.size()));
        return true;
    }
    if (arg.rfind(kTrace, 0) == 0) {
        tracePath = std::string(arg.substr(kTrace.size()));
        if (!tracePath.empty())
            Tracer::global().enable();
        return true;
    }
    return false;
}

void
OutputFlags::writeArtifacts() const
{
    if (!metricsPath.empty()) {
        if (endsWith(metricsPath, ".json"))
            Registry::global().writeJson(metricsPath);
        else
            Registry::global().writePrometheus(metricsPath);
    }
    if (!tracePath.empty())
        Tracer::global().writeChromeJson(tracePath);
}

OutputFlags
parseOutputFlags(int argc, char **argv)
{
    OutputFlags flags;
    for (int i = 1; i < argc; ++i)
        flags.accept(argv[i]);
    return flags;
}

} // namespace specpmt::obs
