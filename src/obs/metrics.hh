/**
 * @file
 * Runtime-wide metrics registry: the one place every layer of the
 * stack (pmem device/timing model, transaction runtimes, KV service,
 * hardware simulators, crash explorer) publishes its persistence
 * events, so benches and CI jobs emit comparable machine-readable
 * snapshots instead of hand-rolled printf dumps.
 *
 * Three instrument kinds:
 *
 *  - Counter: monotonically increasing; the add() fast path is one
 *    relaxed fetch_add on a cache-line-padded per-thread shard, so
 *    hot paths (every emulated store) pay no shared-line contention;
 *  - Gauge: a settable signed level (bytes in use, last recovery ns);
 *  - Histogram: a striped-lock wrapper over LatencyHistogram, for
 *    latency/size distributions recorded from many threads.
 *
 * Instruments are registered by (name, labels) and live for the
 * registry's lifetime, so call sites cache a reference once:
 *
 *     static auto &commits = obs::Registry::global().counter(
 *         "specpmt_spec_tx_commits_total",
 *         "committed SpecSPMT transactions");
 *     commits.add();
 *
 * snapshot() folds the shards into a point-in-time Snapshot that
 * serializes as Prometheus text or JSON. Snapshots are torn-free per
 * sample (each shard read is atomic and counters are monotone) though
 * not a cross-metric atomic cut — the same contract real scrape-based
 * systems provide.
 *
 * Tests that need exact isolated counts construct their own Registry;
 * production code shares Registry::global().
 */

#ifndef SPECPMT_OBS_METRICS_HH
#define SPECPMT_OBS_METRICS_HH

#include <array>
#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "common/stats.hh"

namespace specpmt::obs
{

/** Label pairs attached to an instrument, e.g. {{"class","log"}}. */
using Labels = std::vector<std::pair<std::string, std::string>>;

/** Per-thread shard slots per counter (a power of two). */
constexpr unsigned kCounterShards = 16;

/** Stripes per histogram (each holds a mutex + LatencyHistogram). */
constexpr unsigned kHistogramStripes = 8;

namespace detail
{
/** Hands out the next thread shard id; only threadShard() calls it. */
unsigned nextThreadShard();
} // namespace detail

/**
 * Index of the calling thread's shard slot: a small id handed out on
 * first use, fixed for the thread's lifetime. Distinct threads may
 * share a slot (adds are atomic); a single thread never migrates, so
 * its adds stay on one cache line. Inline so hot add() sites reduce
 * to a TLS load plus the fetch_add.
 */
inline unsigned
threadShard()
{
    thread_local const unsigned shard = detail::nextThreadShard();
    return shard;
}

/** Monotonically increasing event counter; see file comment. */
class Counter
{
  public:
    void
    add(std::uint64_t delta = 1)
    {
        slots_[threadShard() & (kCounterShards - 1)].value.fetch_add(
            delta, std::memory_order_relaxed);
    }

    /** Sum over shards (torn-free: monotone, per-shard atomic). */
    std::uint64_t
    value() const
    {
        std::uint64_t sum = 0;
        for (const auto &slot : slots_)
            sum += slot.value.load(std::memory_order_relaxed);
        return sum;
    }

  private:
    struct alignas(64) Slot
    {
        std::atomic<std::uint64_t> value{0};
    };
    std::array<Slot, kCounterShards> slots_;
};

/**
 * A settable floating-point level, for derived ratios (write
 * amplification, flushes per transaction) that lose their meaning
 * truncated to integers. Serialized into the gauge sections of the
 * expositions alongside integer Gauges.
 */
class FloatGauge
{
  public:
    void
    set(double value)
    {
        value_.store(value, std::memory_order_relaxed);
    }

    double
    value() const
    {
        return value_.load(std::memory_order_relaxed);
    }

  private:
    std::atomic<double> value_{0.0};
};

/** A settable signed level. */
class Gauge
{
  public:
    void
    set(std::int64_t value)
    {
        value_.store(value, std::memory_order_relaxed);
    }

    void
    add(std::int64_t delta)
    {
        value_.fetch_add(delta, std::memory_order_relaxed);
    }

    std::int64_t
    value() const
    {
        return value_.load(std::memory_order_relaxed);
    }

  private:
    std::atomic<std::int64_t> value_{0};
};

/**
 * Thread-safe distribution instrument over LatencyHistogram. record()
 * takes the calling thread's stripe lock (uncontended in steady
 * state); snapshot() merges all stripes.
 */
class Histogram
{
  public:
    /**
     * Record one sample. A nonzero @p exemplarId attaches an
     * OpenMetrics-style exemplar to the sample's bucket: the bucket
     * remembers (id, value) of the most recent exemplified sample,
     * so a live scrape can link a tail bucket straight to the trace
     * of a request that landed in it.
     */
    void record(std::uint64_t value, std::uint64_t exemplarId = 0);

    /** Fold a thread-local LatencyHistogram in post-run (bulk path). */
    void mergeFrom(const LatencyHistogram &other);

    /** Merged copy of all stripes. */
    LatencyHistogram snapshot() const;

    /** Merged exemplars: bucket index -> (exemplar id, value). */
    std::map<unsigned, std::array<std::uint64_t, 2>> exemplars() const;

  private:
    struct Stripe
    {
        mutable std::mutex mutex;
        LatencyHistogram hist;
        /** Bucket index -> (exemplar id, value); latest wins. */
        std::map<unsigned, std::array<std::uint64_t, 2>> exemplars;
    };
    std::array<Stripe, kHistogramStripes> stripes_;
};

/** One serialized histogram in a Snapshot. */
struct HistogramSample
{
    std::uint64_t count = 0;
    std::uint64_t sum = 0;
    std::uint64_t max = 0;
    /** (lower bound, upper bound, count) of every non-empty bucket. */
    std::vector<std::array<std::uint64_t, 3>> buckets;
    /**
     * (bucket upper bound, exemplar id, sample value) for every
     * bucket that holds an exemplar, sorted by bound. Empty unless
     * record() was called with a nonzero exemplar id, so expositions
     * without exemplars are byte-identical to the pre-exemplar form.
     */
    std::vector<std::array<std::uint64_t, 3>> exemplars;
};

/**
 * Point-in-time view of a registry, keyed by exposition name
 * (`name{label="value",...}`), ready to serialize or diff.
 */
struct Snapshot
{
    std::map<std::string, std::uint64_t> counters;
    std::map<std::string, std::int64_t> gauges;
    /** FloatGauge levels; merged into the gauge output sections. */
    std::map<std::string, double> floatGauges;
    std::map<std::string, HistogramSample> histograms;
    /** Base metric name -> help string (for # HELP lines). */
    std::map<std::string, std::string> help;

    /** Prometheus text exposition format. */
    std::string toPrometheus() const;

    /** JSON object with counters/gauges/histograms sections. */
    std::string toJson() const;
};

/**
 * Flat view of a Prometheus text file: exposition name -> value.
 * Histogram series appear as their _bucket/_sum/_count samples.
 */
using FlatSamples = std::map<std::string, double>;

/**
 * Parse Prometheus text exposition (as produced by toPrometheus, but
 * accepting any conforming file). Returns false and sets @p error on
 * the first malformed line.
 */
bool parsePrometheus(std::string_view text, FlatSamples &out,
                     std::string &error);

/** Build the exposition name: `name{k1="v1",k2="v2"}`. */
std::string expositionName(std::string_view name, const Labels &labels);

/**
 * Force @p name into the Prometheus metric-name charset
 * `[a-zA-Z_:][a-zA-Z0-9_:]*`: every illegal byte becomes '_', an
 * illegal (or missing) leading byte gains a '_' prefix. Applied on
 * every registration so dynamically composed names (e.g. derived from
 * workload or shard identifiers) can never produce an unparseable
 * exposition.
 */
std::string sanitizeMetricName(std::string_view name);

/** The instrument registry; see file comment. */
class Registry
{
  public:
    Registry() = default;
    Registry(const Registry &) = delete;
    Registry &operator=(const Registry &) = delete;

    /** The process-wide registry every runtime publishes into. */
    static Registry &global();

    /**
     * Find or create the counter `name{labels}`. @p help is recorded
     * on first registration (later values are ignored). The returned
     * reference stays valid for the registry's lifetime.
     */
    Counter &counter(std::string_view name, std::string_view help = {},
                     const Labels &labels = {});

    Gauge &gauge(std::string_view name, std::string_view help = {},
                 const Labels &labels = {});

    FloatGauge &floatGauge(std::string_view name,
                           std::string_view help = {},
                           const Labels &labels = {});

    Histogram &histogram(std::string_view name,
                         std::string_view help = {},
                         const Labels &labels = {});

    /** Point-in-time copy of every instrument. */
    Snapshot snapshot() const;

    /** Snapshot serialized and written to @p path; false on IO error. */
    bool writePrometheus(const std::string &path) const;
    bool writeJson(const std::string &path) const;

  private:
    enum class Kind
    {
        Counter,
        Gauge,
        FloatGauge,
        Histogram,
    };

    struct Entry
    {
        Kind kind;
        std::string baseName;
        std::unique_ptr<Counter> counter;
        std::unique_ptr<Gauge> gauge;
        std::unique_ptr<class FloatGauge> floatGauge;
        std::unique_ptr<Histogram> histogram;
    };

    Entry &entry(Kind kind, std::string_view name,
                 std::string_view help, const Labels &labels);

    mutable std::mutex mutex_;
    /** Exposition name -> instrument; map keeps output sorted. */
    std::map<std::string, Entry> entries_;
    std::map<std::string, std::string> help_;
};

} // namespace specpmt::obs

#endif // SPECPMT_OBS_METRICS_HH
