/**
 * @file
 * Metrics registry implementation: shard assignment, snapshot fold,
 * Prometheus/JSON serialization and the text-exposition parser used
 * by specstat and the golden tests.
 */

#include "obs/metrics.hh"

#include <cctype>
#include <charconv>
#include <cstdio>

#include "common/logging.hh"

namespace specpmt::obs
{

unsigned
detail::nextThreadShard()
{
    static std::atomic<unsigned> next{0};
    return next.fetch_add(1, std::memory_order_relaxed);
}

void
Histogram::record(std::uint64_t value, std::uint64_t exemplarId)
{
    auto &stripe = stripes_[threadShard() & (kHistogramStripes - 1)];
    std::lock_guard<std::mutex> guard(stripe.mutex);
    stripe.hist.record(value);
    if (exemplarId != 0)
        stripe.exemplars[LatencyHistogram::bucketIndex(value)] = {
            exemplarId, value};
}

std::map<unsigned, std::array<std::uint64_t, 2>>
Histogram::exemplars() const
{
    std::map<unsigned, std::array<std::uint64_t, 2>> merged;
    for (const auto &stripe : stripes_) {
        std::lock_guard<std::mutex> guard(stripe.mutex);
        for (const auto &[bucket, ex] : stripe.exemplars)
            merged[bucket] = ex;
    }
    return merged;
}

void
Histogram::mergeFrom(const LatencyHistogram &other)
{
    auto &stripe = stripes_[threadShard() & (kHistogramStripes - 1)];
    std::lock_guard<std::mutex> guard(stripe.mutex);
    stripe.hist.merge(other);
}

LatencyHistogram
Histogram::snapshot() const
{
    LatencyHistogram merged;
    for (const auto &stripe : stripes_) {
        std::lock_guard<std::mutex> guard(stripe.mutex);
        merged.merge(stripe.hist);
    }
    return merged;
}

std::string
expositionName(std::string_view name, const Labels &labels)
{
    std::string out(name);
    if (labels.empty())
        return out;
    out += '{';
    bool first = true;
    for (const auto &[key, value] : labels) {
        if (!first)
            out += ',';
        first = false;
        out += key;
        out += "=\"";
        for (char c : value) {
            // Prometheus label values escape backslash, quote, newline.
            if (c == '\\' || c == '"')
                out += '\\';
            if (c == '\n') {
                out += "\\n";
                continue;
            }
            out += c;
        }
        out += '"';
    }
    out += '}';
    return out;
}

std::string
sanitizeMetricName(std::string_view name)
{
    auto legal = [](char c, bool leading) {
        if (c == '_' || c == ':')
            return true;
        if (std::isalpha(static_cast<unsigned char>(c)))
            return true;
        return !leading && std::isdigit(static_cast<unsigned char>(c));
    };
    std::string out;
    out.reserve(name.size() + 1);
    if (name.empty() || !legal(name[0], true))
        out += '_';
    for (char c : name)
        out += legal(c, false) ? c : '_';
    return out;
}

namespace
{

/** `name{a="b"}` -> `name`; plain names pass through. */
std::string
baseOf(const std::string &exposition)
{
    auto brace = exposition.find('{');
    return brace == std::string::npos ? exposition
                                      : exposition.substr(0, brace);
}

/**
 * Rewrite `name{a="b"}` to `name{a="b",extra}` (or `name{extra}`),
 * used to splice `le="..."` into histogram bucket series.
 */
std::string
withExtraLabel(const std::string &exposition, const std::string &extra)
{
    auto brace = exposition.find('{');
    if (brace == std::string::npos)
        return exposition + '{' + extra + '}';
    std::string out = exposition;
    out.insert(out.size() - 1, "," + extra);
    return out;
}

void
appendHelpType(std::string &out, const Snapshot &snap,
               const std::string &base, const char *type,
               std::string &lastBase)
{
    if (base == lastBase)
        return;
    lastBase = base;
    auto it = snap.help.find(base);
    if (it != snap.help.end() && !it->second.empty())
        out += "# HELP " + base + ' ' + it->second + '\n';
    out += "# TYPE " + base + ' ' + type + '\n';
}

/**
 * Shortest %g form that still distinguishes the ratios we publish
 * (write amp, flushes/tx); parses back via from_chars<double>.
 */
std::string
formatDouble(double v)
{
    char buf[64];
    std::snprintf(buf, sizeof buf, "%.9g", v);
    return buf;
}

void
appendJsonString(std::string &out, std::string_view s)
{
    out += '"';
    for (char c : s) {
        switch (c) {
        case '"': out += "\\\""; break;
        case '\\': out += "\\\\"; break;
        case '\n': out += "\\n"; break;
        case '\t': out += "\\t"; break;
        default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof buf, "\\u%04x", c);
                out += buf;
            } else {
                out += c;
            }
        }
    }
    out += '"';
}

} // namespace

std::string
Snapshot::toPrometheus() const
{
    std::string out;
    std::string lastBase;
    for (const auto &[name, value] : counters) {
        appendHelpType(out, *this, baseOf(name), "counter", lastBase);
        out += name + ' ' + std::to_string(value) + '\n';
    }
    lastBase.clear();
    {
        // Integer and float gauges interleave in name order so the
        // output stays sorted (and byte-identical to the pre-float
        // format when no FloatGauge is registered).
        auto g = gauges.begin();
        auto f = floatGauges.begin();
        while (g != gauges.end() || f != floatGauges.end()) {
            bool takeInt = f == floatGauges.end() ||
                           (g != gauges.end() && g->first < f->first);
            const std::string &name = takeInt ? g->first : f->first;
            appendHelpType(out, *this, baseOf(name), "gauge", lastBase);
            out += name + ' ' +
                   (takeInt ? std::to_string(g->second)
                            : formatDouble(f->second)) +
                   '\n';
            if (takeInt)
                ++g;
            else
                ++f;
        }
    }
    lastBase.clear();
    for (const auto &[name, h] : histograms) {
        appendHelpType(out, *this, baseOf(name), "histogram", lastBase);
        // Cumulative buckets over the non-empty LatencyHistogram
        // buckets; the final +Inf bucket always equals count. A
        // bucket holding an exemplar gets the OpenMetrics suffix
        // ` # {trace_id="..."} value` on its own sample line.
        std::uint64_t cumulative = 0;
        std::string base = baseOf(name);
        for (const auto &bucket : h.buckets) {
            cumulative += bucket[2];
            out += withExtraLabel(base + "_bucket" + name.substr(base.size()),
                                  "le=\"" + std::to_string(bucket[1]) + "\"") +
                   ' ' + std::to_string(cumulative);
            for (const auto &ex : h.exemplars) {
                if (ex[0] != bucket[1])
                    continue;
                out += " # {trace_id=\"" + std::to_string(ex[1]) +
                       "\"} " + std::to_string(ex[2]);
                break;
            }
            out += '\n';
        }
        out += withExtraLabel(base + "_bucket" + name.substr(base.size()),
                              "le=\"+Inf\"") +
               ' ' + std::to_string(h.count) + '\n';
        out += base + "_sum" + name.substr(base.size()) + ' ' +
               std::to_string(h.sum) + '\n';
        out += base + "_count" + name.substr(base.size()) + ' ' +
               std::to_string(h.count) + '\n';
    }
    return out;
}

std::string
Snapshot::toJson() const
{
    std::string out = "{\n  \"counters\": {";
    bool first = true;
    for (const auto &[name, value] : counters) {
        out += first ? "\n    " : ",\n    ";
        first = false;
        appendJsonString(out, name);
        out += ": " + std::to_string(value);
    }
    out += first ? "},\n" : "\n  },\n";
    out += "  \"gauges\": {";
    first = true;
    {
        auto g = gauges.begin();
        auto f = floatGauges.begin();
        while (g != gauges.end() || f != floatGauges.end()) {
            bool takeInt = f == floatGauges.end() ||
                           (g != gauges.end() && g->first < f->first);
            out += first ? "\n    " : ",\n    ";
            first = false;
            appendJsonString(out, takeInt ? g->first : f->first);
            out += ": ";
            out += takeInt ? std::to_string(g->second)
                           : formatDouble(f->second);
            if (takeInt)
                ++g;
            else
                ++f;
        }
    }
    out += first ? "},\n" : "\n  },\n";
    out += "  \"histograms\": {";
    first = true;
    for (const auto &[name, h] : histograms) {
        out += first ? "\n    " : ",\n    ";
        first = false;
        appendJsonString(out, name);
        out += ": {\"count\": " + std::to_string(h.count) +
               ", \"sum\": " + std::to_string(h.sum) +
               ", \"max\": " + std::to_string(h.max) + ", \"buckets\": [";
        bool firstBucket = true;
        for (const auto &bucket : h.buckets) {
            if (!firstBucket)
                out += ", ";
            firstBucket = false;
            out += "[" + std::to_string(bucket[0]) + ", " +
                   std::to_string(bucket[1]) + ", " +
                   std::to_string(bucket[2]) + "]";
        }
        out += "]";
        // Exemplars only when present, so exemplar-free snapshots
        // keep the historical (golden-tested) shape.
        if (!h.exemplars.empty()) {
            out += ", \"exemplars\": [";
            bool firstEx = true;
            for (const auto &ex : h.exemplars) {
                if (!firstEx)
                    out += ", ";
                firstEx = false;
                out += "[" + std::to_string(ex[0]) + ", " +
                       std::to_string(ex[1]) + ", " +
                       std::to_string(ex[2]) + "]";
            }
            out += "]";
        }
        out += "}";
    }
    out += first ? "}\n" : "\n  }\n";
    out += "}\n";
    return out;
}

bool
parsePrometheus(std::string_view text, FlatSamples &out,
                std::string &error)
{
    std::size_t lineNo = 0;
    std::size_t pos = 0;
    while (pos <= text.size()) {
        auto end = text.find('\n', pos);
        if (end == std::string_view::npos)
            end = text.size();
        std::string_view line = text.substr(pos, end - pos);
        pos = end + 1;
        ++lineNo;
        if (line.empty() || line[0] == '#')
            continue;
        // OpenMetrics exemplars ride bucket lines as a ` # {...} v`
        // suffix; drop it before the name/value split. Label values
        // in this codebase never contain " # ", so the first match
        // is always the exemplar marker.
        auto exemplar = line.find(" # ");
        if (exemplar != std::string_view::npos)
            line = line.substr(0, exemplar);
        // A sample line is `name[{labels}] value`; split on the last
        // space so quoted label values containing spaces survive.
        auto space = line.rfind(' ');
        if (space == std::string_view::npos || space == 0 ||
            space + 1 == line.size()) {
            error = "line " + std::to_string(lineNo) +
                    ": expected `name value`";
            return false;
        }
        std::string_view name = line.substr(0, space);
        std::string_view value = line.substr(space + 1);
        // Validate the metric name: [a-zA-Z_:][a-zA-Z0-9_:]* with an
        // optional balanced {..} label block.
        auto brace = name.find('{');
        std::string_view ident =
            brace == std::string_view::npos ? name : name.substr(0, brace);
        if (ident.empty() ||
            (!std::isalpha(static_cast<unsigned char>(ident[0])) &&
             ident[0] != '_' && ident[0] != ':')) {
            error = "line " + std::to_string(lineNo) +
                    ": bad metric name";
            return false;
        }
        for (char c : ident) {
            if (!std::isalnum(static_cast<unsigned char>(c)) && c != '_' &&
                c != ':') {
                error = "line " + std::to_string(lineNo) +
                        ": bad metric name";
                return false;
            }
        }
        if (brace != std::string_view::npos && name.back() != '}') {
            error = "line " + std::to_string(lineNo) +
                    ": unterminated label block";
            return false;
        }
        double parsed = 0;
        auto [ptr, ec] = std::from_chars(value.data(),
                                         value.data() + value.size(),
                                         parsed);
        if (ec != std::errc{} || ptr != value.data() + value.size()) {
            error = "line " + std::to_string(lineNo) + ": bad value `" +
                    std::string(value) + '`';
            return false;
        }
        out[std::string(name)] = parsed;
    }
    return true;
}

Registry &
Registry::global()
{
    // Intentionally leaked: device/timing destructors publish their
    // final deltas here, and those may run during static teardown
    // after a function-local static registry would be gone.
    static Registry *instance = new Registry;
    return *instance;
}

Registry::Entry &
Registry::entry(Kind kind, std::string_view rawName, std::string_view help,
                const Labels &labels)
{
    std::string name = sanitizeMetricName(rawName);
    std::string key = expositionName(name, labels);
    std::lock_guard<std::mutex> guard(mutex_);
    auto it = entries_.find(key);
    if (it == entries_.end()) {
        Entry fresh;
        fresh.kind = kind;
        fresh.baseName = std::string(name);
        switch (kind) {
        case Kind::Counter:
            fresh.counter = std::make_unique<Counter>();
            break;
        case Kind::Gauge:
            fresh.gauge = std::make_unique<Gauge>();
            break;
        case Kind::FloatGauge:
            fresh.floatGauge = std::make_unique<class FloatGauge>();
            break;
        case Kind::Histogram:
            fresh.histogram = std::make_unique<Histogram>();
            break;
        }
        it = entries_.emplace(std::move(key), std::move(fresh)).first;
        if (!help.empty())
            help_.emplace(std::string(name), std::string(help));
    }
    if (it->second.kind != kind)
        SPECPMT_PANIC("metric `%s` re-registered as a different kind",
                      it->first.c_str());
    return it->second;
}

Counter &
Registry::counter(std::string_view name, std::string_view help,
                  const Labels &labels)
{
    return *entry(Kind::Counter, name, help, labels).counter;
}

Gauge &
Registry::gauge(std::string_view name, std::string_view help,
                const Labels &labels)
{
    return *entry(Kind::Gauge, name, help, labels).gauge;
}

FloatGauge &
Registry::floatGauge(std::string_view name, std::string_view help,
                     const Labels &labels)
{
    return *entry(Kind::FloatGauge, name, help, labels).floatGauge;
}

Histogram &
Registry::histogram(std::string_view name, std::string_view help,
                    const Labels &labels)
{
    return *entry(Kind::Histogram, name, help, labels).histogram;
}

Snapshot
Registry::snapshot() const
{
    Snapshot snap;
    std::lock_guard<std::mutex> guard(mutex_);
    snap.help = help_;
    for (const auto &[name, e] : entries_) {
        switch (e.kind) {
        case Kind::Counter:
            snap.counters.emplace(name, e.counter->value());
            break;
        case Kind::Gauge:
            snap.gauges.emplace(name, e.gauge->value());
            break;
        case Kind::FloatGauge:
            snap.floatGauges.emplace(name, e.floatGauge->value());
            break;
        case Kind::Histogram: {
            LatencyHistogram merged = e.histogram->snapshot();
            HistogramSample sample;
            sample.count = merged.count();
            sample.sum = merged.sum();
            sample.max = merged.max();
            const auto &buckets = merged.buckets();
            for (unsigned i = 0; i < LatencyHistogram::kBuckets; ++i) {
                if (buckets[i] == 0)
                    continue;
                sample.buckets.push_back(
                    {LatencyHistogram::bucketLowerBound(i),
                     LatencyHistogram::bucketUpperBound(i), buckets[i]});
            }
            for (const auto &[bucket, ex] : e.histogram->exemplars())
                sample.exemplars.push_back(
                    {LatencyHistogram::bucketUpperBound(bucket), ex[0],
                     ex[1]});
            snap.histograms.emplace(name, std::move(sample));
            break;
        }
        }
    }
    return snap;
}

namespace
{

bool
writeFile(const std::string &path, const std::string &content)
{
    std::FILE *f = std::fopen(path.c_str(), "w");
    if (f == nullptr)
        return false;
    bool ok = std::fwrite(content.data(), 1, content.size(), f) ==
              content.size();
    ok = std::fclose(f) == 0 && ok;
    return ok;
}

} // namespace

bool
Registry::writePrometheus(const std::string &path) const
{
    return writeFile(path, snapshot().toPrometheus());
}

bool
Registry::writeJson(const std::string &path) const
{
    return writeFile(path, snapshot().toJson());
}

} // namespace specpmt::obs
