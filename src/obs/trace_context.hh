/**
 * @file
 * Per-thread request trace context and PM cost accounting.
 *
 * A TraceContext rides the thread that is currently executing a
 * request: the net server (or a bench harness) installs the request's
 * 64-bit trace id with a ScopedTraceId, and every layer below —
 * core::SpecTx / core::HashLogTx appends, PmemDevice flush/fence
 * hooks — charges its persistence work to the context's PmCost
 * vector. The cost fields accumulate unconditionally (they are a few
 * thread-local adds on paths that already maintain device stats), so
 * callers measure a region by snapshotting `cost` before and
 * subtracting after; the trace id is only consulted when a span or
 * histogram exemplar needs a correlation key.
 *
 * The context is plain thread-local state, not a tracing dependency:
 * this header pulls in nothing from trace.hh or metrics.hh, so the
 * pmem and core layers can charge costs without linking the tracer.
 */

#ifndef SPECPMT_OBS_TRACE_CONTEXT_HH
#define SPECPMT_OBS_TRACE_CONTEXT_HH

#include <cstdint>

namespace specpmt::obs
{

/**
 * Persistence cost vector charged by the layers below a request.
 * Counters are cumulative per thread; subtract two snapshots to cost
 * a region. The watermark fields (logBytesPeak, reclaimDebt) are
 * levels, not counters: the tx runtime overwrites them at commit.
 */
struct PmCost
{
    /** Bytes the user asked to persist (txStore payload sizes). */
    std::uint64_t userBytes = 0;
    /** Bytes actually appended to persistent logs (incl. headers). */
    std::uint64_t logBytes = 0;
    /** txStore calls answered from the dedup index (no log write). */
    std::uint64_t dedupHits = 0;
    /** Cache lines flushed (clwb / ntstore / ADR-persist lines). */
    std::uint64_t flushes = 0;
    /** Bytes covered by those flushes. */
    std::uint64_t flushBytes = 0;
    /** Store fences issued. */
    std::uint64_t fences = 0;
    /** Flushes by device call-site class (see pmem::TrafficClass). */
    std::uint64_t flushesData = 0;
    std::uint64_t flushesLog = 0;
    std::uint64_t flushesMeta = 0;
    /** Log-space high watermark of the committing runtime (bytes). */
    std::uint64_t logBytesPeak = 0;
    /** Live log bytes beyond the reclaim threshold (0 when under). */
    std::uint64_t reclaimDebt = 0;

    /** Counter-field delta (watermarks copied from @p after). */
    static PmCost
    delta(const PmCost &before, const PmCost &after)
    {
        PmCost d;
        d.userBytes = after.userBytes - before.userBytes;
        d.logBytes = after.logBytes - before.logBytes;
        d.dedupHits = after.dedupHits - before.dedupHits;
        d.flushes = after.flushes - before.flushes;
        d.flushBytes = after.flushBytes - before.flushBytes;
        d.fences = after.fences - before.fences;
        d.flushesData = after.flushesData - before.flushesData;
        d.flushesLog = after.flushesLog - before.flushesLog;
        d.flushesMeta = after.flushesMeta - before.flushesMeta;
        d.logBytesPeak = after.logBytesPeak;
        d.reclaimDebt = after.reclaimDebt;
        return d;
    }
};

/** The per-thread context: correlation key + cost accumulator. */
struct TraceContext
{
    /** Trace id of the request this thread is executing; 0 = none. */
    std::uint64_t traceId = 0;
    /** Whether that request asked for full span sampling. */
    bool sampled = false;
    PmCost cost;
};

/** The calling thread's context (never null, lives forever). */
TraceContext &traceContext();

/**
 * RAII installer: sets the thread's trace id/sampled flag for one
 * request (or batch) and restores the previous values on exit, so
 * nested scopes and non-request work compose.
 */
class ScopedTraceId
{
  public:
    ScopedTraceId(std::uint64_t traceId, bool sampled)
        : ctx_(traceContext()), priorId_(ctx_.traceId),
          priorSampled_(ctx_.sampled)
    {
        ctx_.traceId = traceId;
        ctx_.sampled = sampled;
    }

    ~ScopedTraceId()
    {
        ctx_.traceId = priorId_;
        ctx_.sampled = priorSampled_;
    }

    ScopedTraceId(const ScopedTraceId &) = delete;
    ScopedTraceId &operator=(const ScopedTraceId &) = delete;

  private:
    TraceContext &ctx_;
    std::uint64_t priorId_;
    bool priorSampled_;
};

} // namespace specpmt::obs

#endif // SPECPMT_OBS_TRACE_CONTEXT_HH
