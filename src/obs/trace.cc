/**
 * @file
 * Tracer implementation: per-thread ring buffers chained on a
 * lock-free list, steady-clock time base, Chrome trace-event JSON
 * serialization.
 */

#include "obs/trace.hh"

#include <chrono>
#include <cstdio>
#include <mutex>
#include <vector>

#include "obs/metrics.hh"

namespace specpmt::obs
{

namespace
{

/** One buffered span. */
struct Event
{
    const char *name;
    const char *category;
    std::uint64_t startNs;
    std::uint64_t endNs;
    /** Correlation id (0 = none); see Tracer::record. */
    std::uint64_t id;
    /** Numeric arguments (keys are literals, like name/category). */
    TraceArg args[Tracer::kMaxTraceArgs];
    unsigned numArgs;
};

} // namespace

/**
 * Fixed ring of events owned by one thread. Only the owner writes;
 * the serializer reads under the buffer mutex, which the owner also
 * takes per record — uncontended in steady state since serialization
 * happens at artifact-write time.
 */
struct Tracer::ThreadBuffer
{
    std::mutex mutex;
    std::vector<Event> ring = std::vector<Event>(kRingCapacity);
    std::size_t head = 0;  // next write position
    std::size_t size = 0;  // events held (<= kRingCapacity)
    std::uint64_t dropped = 0;
    std::uint64_t tid = 0;
    ThreadBuffer *next = nullptr;
};

Tracer &
Tracer::global()
{
    static Tracer instance;
    return instance;
}

std::uint64_t
Tracer::now()
{
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now().time_since_epoch())
            .count());
}

void
Tracer::enable()
{
    enabled_.store(true, std::memory_order_relaxed);
}

void
Tracer::disable()
{
    enabled_.store(false, std::memory_order_relaxed);
}

Tracer::ThreadBuffer &
Tracer::threadBuffer()
{
    thread_local ThreadBuffer *mine = nullptr;
    if (mine == nullptr) {
        static std::atomic<std::uint64_t> nextTid{1};
        // Leaked deliberately: the serializer may walk the list after
        // the owning thread exits, and tracing threads are few.
        auto *fresh = new ThreadBuffer;
        fresh->tid = nextTid.fetch_add(1, std::memory_order_relaxed);
        fresh->next = buffers_.load(std::memory_order_acquire);
        while (!buffers_.compare_exchange_weak(fresh->next, fresh,
                                               std::memory_order_release,
                                               std::memory_order_acquire)) {
        }
        mine = fresh;
    }
    return *mine;
}

void
Tracer::record(const char *name, const char *category,
               std::uint64_t startNs, std::uint64_t endNs,
               std::uint64_t id, const TraceArg *args,
               unsigned numArgs)
{
    // Registered up front (outside the buffer lock) so a live scrape
    // can alert on trace loss; the per-buffer counter below feeds
    // droppedEvents() and is reset by clear(), while this registry
    // counter stays cumulative like every other *_total series.
    static Counter &droppedTotal = Registry::global().counter(
        "specpmt_trace_dropped_total",
        "trace spans overwritten by ring-buffer wraparound");
    ThreadBuffer &buf = threadBuffer();
    std::lock_guard<std::mutex> guard(buf.mutex);
    if (buf.size == kRingCapacity) {
        ++buf.dropped;
        droppedTotal.add();
    } else {
        ++buf.size;
    }
    Event &e = buf.ring[buf.head];
    e = Event{};
    e.name = name;
    e.category = category;
    e.startNs = startNs;
    e.endNs = endNs;
    e.id = id;
    e.numArgs = numArgs < kMaxTraceArgs ? numArgs : kMaxTraceArgs;
    for (unsigned i = 0; i < e.numArgs; ++i)
        e.args[i] = args[i];
    buf.head = (buf.head + 1) % kRingCapacity;
}

std::uint64_t
Tracer::droppedEvents() const
{
    std::uint64_t total = 0;
    for (ThreadBuffer *buf = buffers_.load(std::memory_order_acquire);
         buf != nullptr; buf = buf->next) {
        std::lock_guard<std::mutex> guard(buf->mutex);
        total += buf->dropped;
    }
    return total;
}

std::size_t
Tracer::bufferedEvents() const
{
    std::size_t total = 0;
    for (ThreadBuffer *buf = buffers_.load(std::memory_order_acquire);
         buf != nullptr; buf = buf->next) {
        std::lock_guard<std::mutex> guard(buf->mutex);
        total += buf->size;
    }
    return total;
}

namespace
{

void
appendEscaped(std::string &out, const char *s)
{
    for (; *s != '\0'; ++s) {
        if (*s == '"' || *s == '\\')
            out += '\\';
        out += *s;
    }
}

} // namespace

std::string
Tracer::toChromeJson(std::uint64_t sinceNs) const
{
    std::string out = "{\"traceEvents\": [";
    bool first = true;
    for (ThreadBuffer *buf = buffers_.load(std::memory_order_acquire);
         buf != nullptr; buf = buf->next) {
        std::lock_guard<std::mutex> guard(buf->mutex);
        std::size_t start =
            (buf->head + kRingCapacity - buf->size) % kRingCapacity;
        for (std::size_t i = 0; i < buf->size; ++i) {
            const Event &e = buf->ring[(start + i) % kRingCapacity];
            if (e.endNs < sinceNs)
                continue;
            out += first ? "\n" : ",\n";
            first = false;
            out += "{\"name\": \"";
            appendEscaped(out, e.name);
            out += "\", \"cat\": \"";
            appendEscaped(out, e.category);
            // Chrome trace timestamps are microseconds; keep sub-µs
            // resolution by emitting three decimal places.
            char buf2[160];
            std::uint64_t durNs =
                e.endNs > e.startNs ? e.endNs - e.startNs : 0;
            std::snprintf(buf2, sizeof buf2,
                          "\", \"ph\": \"X\", \"ts\": %llu.%03u, "
                          "\"dur\": %llu.%03u, \"pid\": 1, \"tid\": %llu",
                          static_cast<unsigned long long>(e.startNs / 1000),
                          static_cast<unsigned>(e.startNs % 1000),
                          static_cast<unsigned long long>(durNs / 1000),
                          static_cast<unsigned>(durNs % 1000),
                          static_cast<unsigned long long>(buf->tid));
            out += buf2;
            if (e.id != 0 || e.numArgs != 0) {
                out += ", \"args\": {";
                bool firstArg = true;
                if (e.id != 0) {
                    std::snprintf(buf2, sizeof buf2, "\"id\": %llu",
                                  static_cast<unsigned long long>(e.id));
                    out += buf2;
                    firstArg = false;
                }
                for (unsigned a = 0; a < e.numArgs; ++a) {
                    if (!firstArg)
                        out += ", ";
                    firstArg = false;
                    out += '"';
                    appendEscaped(out, e.args[a].key);
                    std::snprintf(
                        buf2, sizeof buf2, "\": %llu",
                        static_cast<unsigned long long>(e.args[a].value));
                    out += buf2;
                }
                out += '}';
            }
            out += '}';
        }
    }
    out += "\n]}\n";
    return out;
}

bool
Tracer::writeChromeJson(const std::string &path) const
{
    std::string json = toChromeJson();
    std::FILE *f = std::fopen(path.c_str(), "w");
    if (f == nullptr)
        return false;
    bool ok = std::fwrite(json.data(), 1, json.size(), f) == json.size();
    ok = std::fclose(f) == 0 && ok;
    return ok;
}

void
Tracer::clear()
{
    for (ThreadBuffer *buf = buffers_.load(std::memory_order_acquire);
         buf != nullptr; buf = buf->next) {
        std::lock_guard<std::mutex> guard(buf->mutex);
        buf->head = 0;
        buf->size = 0;
        buf->dropped = 0;
    }
}

} // namespace specpmt::obs
