/**
 * @file
 * Minimal blocking HTTP/1.1 GET client for the telemetry plane: just
 * enough to scrape the admin endpoint (specstat top, `specstat check
 * http://...`, tests) without a curl dependency. One request per
 * connection (`Connection: close`), bounded by a wall-clock deadline
 * so a wedged server cannot hang the caller.
 */

#ifndef SPECPMT_OBS_HTTP_CLIENT_HH
#define SPECPMT_OBS_HTTP_CLIENT_HH

#include <cstdint>
#include <string>
#include <string_view>

namespace specpmt::obs
{

/** Outcome of one httpGet(). */
struct HttpResponse
{
    /** Status code from the response line (0 until parsed). */
    int status = 0;
    /** Response body (headers stripped). */
    std::string body;
    /** Content-Type header value, if present. */
    std::string contentType;
};

/**
 * Perform `GET path` against host:port. Returns false (and sets
 * @p error) on connect/IO/parse failure or when the deadline expires;
 * a non-2xx status is NOT a transport failure — the caller inspects
 * @p out.status.
 */
bool httpGet(const std::string &host, std::uint16_t port,
             const std::string &path, HttpResponse &out,
             std::string &error, int timeoutMs = 5000);

/**
 * Split `http://host[:port]/path` into its parts (port defaults to
 * 80, path to "/"). Returns false on anything else (https, garbage).
 */
bool parseHttpUrl(std::string_view url, std::string &host,
                  std::uint16_t &port, std::string &path);

} // namespace specpmt::obs

#endif // SPECPMT_OBS_HTTP_CLIENT_HH
