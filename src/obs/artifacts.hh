/**
 * @file
 * Shared `--metrics-out=` / `--trace-out=` command-line handling for
 * benches and tools. Parsing a trace path enables the tracer for the
 * rest of the run; writeArtifacts() dumps both sinks once the
 * workload finishes.
 */

#ifndef SPECPMT_OBS_ARTIFACTS_HH
#define SPECPMT_OBS_ARTIFACTS_HH

#include <string>
#include <string_view>

namespace specpmt::obs
{

/** Parsed observability output sinks. */
struct OutputFlags
{
    /** Prometheus text exposition; a ".json" suffix selects JSON. */
    std::string metricsPath;
    /** Chrome trace-event / Perfetto JSON. */
    std::string tracePath;

    /**
     * Consume @p arg if it is one of ours; enables the tracer as a
     * side effect of seeing --trace-out=. Returns false for
     * arguments the caller should handle itself.
     */
    bool accept(std::string_view arg);

    /** Write whichever sinks were requested (no-op when neither). */
    void writeArtifacts() const;
};

/**
 * Scan argv for --metrics-out=/--trace-out=, ignoring everything
 * else. For parsers that reject unknown arguments, call accept()
 * from the option loop instead.
 */
OutputFlags parseOutputFlags(int argc, char **argv);

} // namespace specpmt::obs

#endif // SPECPMT_OBS_ARTIFACTS_HH
