/**
 * @file
 * TelemetryServer implementation: one poll()-driven thread multiplexes
 * the listen socket, a stop eventfd, and a small set of short-lived
 * scrape connections. All route bodies are built synchronously from
 * Registry/Tracer snapshots — those are internally locked, so the
 * serving thread never touches data-plane state directly.
 */

#include "obs/telemetry_server.hh"

#include <arpa/inet.h>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/eventfd.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cctype>
#include <list>

#include "common/logging.hh"
#include "obs/metrics.hh"
#include "obs/trace.hh"

namespace specpmt::obs
{

namespace
{

using Clock = std::chrono::steady_clock;

std::uint64_t
nowMs()
{
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::milliseconds>(
            Clock::now().time_since_epoch())
            .count());
}

std::string
httpResponse(int status, const char *reason, const char *contentType,
             std::string body)
{
    std::string out = "HTTP/1.1 " + std::to_string(status) + ' ' + reason +
                      "\r\nContent-Type: " + contentType +
                      "\r\nContent-Length: " + std::to_string(body.size()) +
                      "\r\nConnection: close\r\n\r\n";
    out += body;
    return out;
}

/** First line of the request head: "GET /path HTTP/1.1". */
bool
parseRequestLine(const std::string &head, std::string &method,
                 std::string &target)
{
    std::size_t eol = head.find("\r\n");
    if (eol == std::string::npos)
        eol = head.find('\n');
    std::string_view line{head.data(),
                          eol == std::string::npos ? head.size() : eol};
    std::size_t sp1 = line.find(' ');
    if (sp1 == std::string_view::npos)
        return false;
    std::size_t sp2 = line.find(' ', sp1 + 1);
    if (sp2 == std::string_view::npos)
        return false;
    method = std::string{line.substr(0, sp1)};
    target = std::string{line.substr(sp1 + 1, sp2 - sp1 - 1)};
    return !method.empty() && !target.empty() && target[0] == '/';
}

/** `?ms=N` for /trace; default 1000, clamped to [1, kTraceWindowMaxMs]. */
std::uint64_t
traceWindowMs(std::string_view query)
{
    std::uint64_t ms = 1000;
    constexpr std::string_view kKey = "ms=";
    while (!query.empty()) {
        std::size_t amp = query.find('&');
        std::string_view param =
            amp == std::string_view::npos ? query : query.substr(0, amp);
        query = amp == std::string_view::npos ? std::string_view{}
                                              : query.substr(amp + 1);
        if (param.substr(0, kKey.size()) != kKey)
            continue;
        std::uint64_t value = 0;
        bool any = false;
        for (char c : param.substr(kKey.size())) {
            if (!std::isdigit(static_cast<unsigned char>(c)))
                return ms;
            value = value * 10 + static_cast<std::uint64_t>(c - '0');
            any = true;
            if (value > kTraceWindowMaxMs)
                return kTraceWindowMaxMs;
        }
        if (any)
            ms = value;
    }
    return std::clamp<std::uint64_t>(ms, 1, kTraceWindowMaxMs);
}

std::string
healthzBody(const std::vector<ShardHealth> &shards, bool &allLive)
{
    allLive = true;
    bool anyDegraded = false;
    for (const auto &s : shards) {
        allLive = allLive && s.live;
        anyDegraded = anyDegraded || s.degraded;
    }
    // The leading "healthz" marker keys specstat's JSON sniffing, the
    // same way "traceEvents"/"counters" key the other artifact kinds.
    std::string body = "{\"healthz\": 1, \"status\": \"";
    body += !allLive ? "stalled" : anyDegraded ? "degraded" : "ok";
    body += "\", \"shards\": [";
    bool first = true;
    for (const auto &s : shards) {
        body += first ? "\n  " : ",\n  ";
        first = false;
        body += "{\"shard\": " + std::to_string(s.shard) +
                ", \"heartbeat_age_us\": " + std::to_string(s.heartbeatAgeUs) +
                ", \"seal_lag\": " + std::to_string(s.sealLag) +
                ", \"live\": " + (s.live ? "true" : "false") +
                ", \"read_only\": " + (s.readOnly ? "true" : "false") +
                ", \"degraded\": " + (s.degraded ? "true" : "false") +
                ", \"quarantined\": " + std::to_string(s.quarantined) +
                ", \"media_aborts\": " + std::to_string(s.mediaAborts) +
                "}";
    }
    body += first ? "]}\n" : "\n]}\n";
    return body;
}

} // namespace

/** One in-flight scrape connection. */
struct TelemetryServer::Conn
{
    int fd = -1;
    std::string in;
    std::string out;
    std::size_t outPos = 0;
    bool writing = false;
    std::uint64_t idleDeadlineMs = 0;
};

TelemetryServer::TelemetryServer(TelemetryConfig config)
    : config_(std::move(config))
{
}

TelemetryServer::~TelemetryServer() { stop(); }

bool
TelemetryServer::start()
{
    if (running_)
        return true;

    listenFd_ = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC | SOCK_NONBLOCK,
                         0);
    if (listenFd_ < 0) {
        SPECPMT_WARN("telemetry: socket: %s", std::strerror(errno));
        return false;
    }
    int one = 1;
    ::setsockopt(listenFd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(config_.port);
    if (::inet_pton(AF_INET, config_.bindAddress.c_str(), &addr.sin_addr) !=
        1) {
        SPECPMT_WARN("telemetry: bad bind address `%s`",
                          config_.bindAddress.c_str());
        ::close(listenFd_);
        listenFd_ = -1;
        return false;
    }
    if (::bind(listenFd_, reinterpret_cast<sockaddr *>(&addr),
               sizeof(addr)) < 0 ||
        ::listen(listenFd_, 16) < 0) {
        SPECPMT_WARN("telemetry: bind/listen %s:%u: %s",
                          config_.bindAddress.c_str(),
                          static_cast<unsigned>(config_.port),
                          std::strerror(errno));
        ::close(listenFd_);
        listenFd_ = -1;
        return false;
    }
    socklen_t len = sizeof(addr);
    if (::getsockname(listenFd_, reinterpret_cast<sockaddr *>(&addr), &len) ==
        0)
        boundPort_ = ntohs(addr.sin_port);

    wakeFd_ = ::eventfd(0, EFD_CLOEXEC | EFD_NONBLOCK);
    if (wakeFd_ < 0) {
        SPECPMT_WARN("telemetry: eventfd: %s", std::strerror(errno));
        ::close(listenFd_);
        listenFd_ = -1;
        return false;
    }

    running_ = true;
    thread_ = std::thread([this] { serveLoop(); });
    return true;
}

void
TelemetryServer::stop()
{
    if (!running_)
        return;
    running_ = false;
    std::uint64_t one = 1;
    [[maybe_unused]] ssize_t n = ::write(wakeFd_, &one, sizeof(one));
    thread_.join();
    ::close(listenFd_);
    ::close(wakeFd_);
    listenFd_ = -1;
    wakeFd_ = -1;
    boundPort_ = 0;
}

std::string
TelemetryServer::respond(const std::string &head) const
{
    std::string method;
    std::string target;
    if (!parseRequestLine(head, method, target))
        return httpResponse(400, "Bad Request", "text/plain",
                            "malformed request\n");
    if (method != "GET")
        return httpResponse(405, "Method Not Allowed", "text/plain",
                            "GET only\n");

    std::size_t qmark = target.find('?');
    std::string path =
        qmark == std::string::npos ? target : target.substr(0, qmark);
    std::string_view query =
        qmark == std::string::npos
            ? std::string_view{}
            : std::string_view{target}.substr(qmark + 1);

    Registry &registry =
        config_.registry != nullptr ? *config_.registry : Registry::global();
    Tracer &tracer =
        config_.tracer != nullptr ? *config_.tracer : Tracer::global();

    if (path == "/metrics")
        return httpResponse(200, "OK",
                            "text/plain; version=0.0.4; charset=utf-8",
                            registry.snapshot().toPrometheus());
    if (path == "/stats.json")
        return httpResponse(200, "OK", "application/json",
                            registry.snapshot().toJson());
    if (path == "/healthz") {
        std::vector<ShardHealth> shards;
        if (config_.health)
            shards = config_.health();
        bool allLive = true;
        std::string body = healthzBody(shards, allLive);
        return allLive ? httpResponse(200, "OK", "application/json",
                                      std::move(body))
                       : httpResponse(503, "Service Unavailable",
                                      "application/json", std::move(body));
    }
    if (path == "/trace") {
        std::uint64_t windowNs = traceWindowMs(query) * 1000000ull;
        std::uint64_t now = Tracer::now();
        std::uint64_t since = now > windowNs ? now - windowNs : 0;
        return httpResponse(200, "OK", "application/json",
                            tracer.toChromeJson(since));
    }
    return httpResponse(404, "Not Found", "text/plain", "unknown route\n");
}

void
TelemetryServer::serveLoop()
{
    std::list<Conn> conns;
    std::vector<pollfd> pfds;
    std::vector<Conn *> pfdConns;

    while (running_) {
        pfds.clear();
        pfdConns.clear();
        pfds.push_back({wakeFd_, POLLIN, 0});
        pfdConns.push_back(nullptr);
        pfds.push_back({listenFd_, POLLIN, 0});
        pfdConns.push_back(nullptr);
        for (Conn &c : conns) {
            pfds.push_back(
                {c.fd, static_cast<short>(c.writing ? POLLOUT : POLLIN), 0});
            pfdConns.push_back(&c);
        }

        // Bounded tick so idle-deadline sweeps run even with no
        // socket activity at all.
        int rc = ::poll(pfds.data(), pfds.size(), 100);
        if (rc < 0 && errno != EINTR) {
            SPECPMT_WARN("telemetry: poll: %s", std::strerror(errno));
            break;
        }
        if (!running_)
            break;

        if (pfds[0].revents != 0) {
            std::uint64_t drain = 0;
            [[maybe_unused]] ssize_t n =
                ::read(wakeFd_, &drain, sizeof(drain));
        }

        if (pfds[1].revents & POLLIN) {
            for (;;) {
                int fd = ::accept4(listenFd_, nullptr, nullptr,
                                   SOCK_CLOEXEC | SOCK_NONBLOCK);
                if (fd < 0)
                    break;
                Conn c;
                c.fd = fd;
                c.idleDeadlineMs =
                    nowMs() + static_cast<std::uint64_t>(
                                  std::max(config_.idleTimeoutMs, 1));
                conns.push_back(std::move(c));
            }
        }

        const std::uint64_t tick = nowMs();
        for (std::size_t i = 2; i < pfds.size(); ++i) {
            Conn &c = *pfdConns[i];
            bool close = false;
            if (pfds[i].revents & (POLLERR | POLLHUP | POLLNVAL))
                close = true;
            else if (!c.writing && (pfds[i].revents & POLLIN)) {
                char buf[4096];
                for (;;) {
                    ssize_t n = ::recv(c.fd, buf, sizeof(buf), 0);
                    if (n > 0) {
                        c.in.append(buf, static_cast<std::size_t>(n));
                        if (c.in.size() > config_.maxRequestBytes) {
                            c.out = httpResponse(400, "Bad Request",
                                                 "text/plain",
                                                 "request too large\n");
                            c.writing = true;
                            break;
                        }
                        continue;
                    }
                    if (n == 0) {
                        // Peer closed before a full head arrived.
                        close = !c.writing;
                        break;
                    }
                    if (errno == EAGAIN || errno == EWOULDBLOCK)
                        break;
                    if (errno == EINTR)
                        continue;
                    close = true;
                    break;
                }
                if (!close && !c.writing) {
                    // GET requests carry no body: a blank line ends
                    // the request.
                    if (c.in.find("\r\n\r\n") != std::string::npos ||
                        c.in.find("\n\n") != std::string::npos) {
                        c.out = respond(c.in);
                        c.writing = true;
                    }
                }
            } else if (c.writing && (pfds[i].revents & POLLOUT)) {
                while (c.outPos < c.out.size()) {
                    ssize_t n = ::send(c.fd, c.out.data() + c.outPos,
                                       c.out.size() - c.outPos, MSG_NOSIGNAL);
                    if (n > 0) {
                        c.outPos += static_cast<std::size_t>(n);
                        continue;
                    }
                    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK))
                        break;
                    if (n < 0 && errno == EINTR)
                        continue;
                    close = true;
                    break;
                }
                if (c.outPos >= c.out.size())
                    close = true;  // Connection: close — done.
            }
            if (!close && tick >= c.idleDeadlineMs)
                close = true;
            if (close) {
                ::close(c.fd);
                c.fd = -1;
            }
        }
        conns.remove_if([](const Conn &c) { return c.fd < 0; });
    }

    for (Conn &c : conns)
        ::close(c.fd);
}

} // namespace specpmt::obs
