/**
 * @file
 * A TxRuntime that records the operation stream of a workload run
 * while applying stores directly (no crash consistency), producing the
 * MemTrace consumed by the hardware simulator.
 */

#ifndef SPECPMT_TXN_TRACE_RECORDER_HH
#define SPECPMT_TXN_TRACE_RECORDER_HH

#include "txn/trace.hh"
#include "txn/tx_runtime.hh"

namespace specpmt::txn
{

/** Trace-producing runtime; see trace.hh. */
class TraceRecorder : public TxRuntime
{
  public:
    TraceRecorder(pmem::PmemPool &pool, unsigned num_threads)
        : TxRuntime(pool, num_threads)
    {}

    const char *name() const override { return "trace"; }

    /**
     * Begin recording. Operations before this call (workload setup)
     * are applied but not traced, so the simulated region matches the
     * measured region of the software benches.
     */
    void startRecording() { recording_ = true; }

    void stopRecording() { recording_ = false; }

    void
    txBegin(ThreadId tid) override
    {
        if (recording_) {
            trace_.ops.push_back({MemOpKind::TxBegin, {}, tid, 0, 0, 0});
            ++trace_.numTx;
        }
    }

    void
    txStore(ThreadId tid, PmOff off, const void *src,
            std::size_t size) override
    {
        dev_.store(off, src, size);
        if (recording_) {
            trace_.ops.push_back({MemOpKind::Store, {}, tid, off,
                                  static_cast<std::uint32_t>(size), 0});
            ++trace_.numUpdates;
            trace_.updateBytes += size;
        }
    }

    void
    txLoad(ThreadId tid, PmOff off, void *dst, std::size_t size) override
    {
        dev_.load(off, dst, size);
        if (recording_) {
            trace_.ops.push_back({MemOpKind::Load, {}, tid, off,
                                  static_cast<std::uint32_t>(size), 0});
            ++trace_.numLoads;
        }
    }

    void
    txCommit(ThreadId tid) override
    {
        if (recording_)
            trace_.ops.push_back({MemOpKind::TxCommit, {}, tid, 0, 0, 0});
    }

    void
    compute(ThreadId tid, SimNs ns) override
    {
        dev_.compute(ns);
        if (recording_) {
            trace_.ops.push_back({MemOpKind::Compute, {}, tid, 0, 0,
                                  static_cast<std::uint32_t>(ns)});
        }
    }

    /** The recorded trace. */
    const MemTrace &trace() const { return trace_; }
    MemTrace takeTrace() { return std::move(trace_); }

  private:
    MemTrace trace_;
    bool recording_ = false;
};

} // namespace specpmt::txn

#endif // SPECPMT_TXN_TRACE_RECORDER_HH
