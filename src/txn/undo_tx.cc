#include "txn/undo_tx.hh"

#include <cstring>

#include "common/crc32.hh"
#include "common/logging.hh"
#include "obs/metrics.hh"
#include "obs/trace.hh"

namespace specpmt::txn
{

namespace
{

/** Per-runtime tx lifecycle counters, labeled by runtime name. */
struct RuntimeMetrics
{
    obs::Counter &begins;
    obs::Counter &commits;
    obs::Counter &aborts;
    obs::Counter &recoveries;

    static RuntimeMetrics
    make(const char *runtime)
    {
        auto &reg = obs::Registry::global();
        const obs::Labels labels{{"runtime", runtime}};
        return RuntimeMetrics{
            reg.counter("specpmt_txn_begins_total",
                        "transactions started, by runtime", labels),
            reg.counter("specpmt_txn_commits_total",
                        "transactions committed, by runtime", labels),
            reg.counter("specpmt_txn_aborts_total",
                        "transactions aborted, by runtime", labels),
            reg.counter("specpmt_txn_recoveries_total",
                        "post-crash recoveries, by runtime", labels),
        };
    }
};

RuntimeMetrics &
undoMetrics()
{
    static RuntimeMetrics m = RuntimeMetrics::make("pmdk-undo");
    return m;
}

RuntimeMetrics &
kaminoMetrics()
{
    static RuntimeMetrics m = RuntimeMetrics::make("kamino");
    return m;
}

/** On-log record header preceding the old-value payload. */
struct RecordHead
{
    std::uint32_t crc;
    std::uint32_t pad;
    std::uint64_t off;
    std::uint64_t size;
};

constexpr std::size_t
paddedPayload(std::size_t size)
{
    return (size + 7) & ~std::size_t{7};
}

std::uint32_t
recordCrc(std::uint64_t tx_seq, std::uint64_t off, std::uint64_t size,
          const std::uint8_t *payload)
{
    std::uint32_t crc = crc32c(&tx_seq, sizeof(tx_seq));
    crc = crc32c(&off, sizeof(off), crc);
    crc = crc32c(&size, sizeof(size), crc);
    return crc32c(payload, size, crc);
}

} // namespace

PmdkUndoTx::PmdkUndoTx(pmem::PmemPool &pool, unsigned num_threads)
    : TxRuntime(pool, num_threads),
      flight_(forensic::FlightRecorder::attach(pool)), logs_(num_threads)
{
    for (unsigned tid = 0; tid < num_threads; ++tid) {
        auto &log = logs_[tid];
        const PmOff root = pool_.getRoot(logHeadSlot(tid));
        if (root != kPmNull) {
            // Re-opening a surviving pool: adopt the old log area so
            // recover() can read it.
            log.headerOff = root;
            log.recordsOff = root + kCacheLineSize;
            log.txSeq = dev_.loadT<Header>(root).txSeq;
            continue;
        }
        log.headerOff = pool_.allocAligned(
            kCacheLineSize + kLogCapacity, kCacheLineSize);
        log.recordsOff = log.headerOff + kCacheLineSize;

        Header header{0, 0, 0, 0};
        dev_.storeT(log.headerOff, header);
        dev_.clwb(log.headerOff, pmem::TrafficClass::Log);
        dev_.sfence();
        pool_.setRoot(logHeadSlot(tid), log.headerOff);
    }
}

void
PmdkUndoTx::txBegin(ThreadId tid)
{
    auto &log = logs_.at(tid);
    SPECPMT_ASSERT(!log.inTx);
    log.inTx = true;
    log.numBytes = 0;
    ++log.txSeq;
    log.writeSet.clear();
    log.loggedSet.clear();

    Header header{log.txSeq, 1, 0, 0};
    dev_.storeT(log.headerOff, header);
    flight_.record(forensic::EventType::TxBegin, tid, log.txSeq);
    dev_.clwb(log.headerOff, pmem::TrafficClass::Log);
    dev_.sfence();
    undoMetrics().begins.add();
}

void
PmdkUndoTx::appendRecord(ThreadLog &log, PmOff off, std::size_t size)
{
    // libpmemobj's tx_add_range maintains a range tree and allocator
    // metadata per snapshotted range; that software path is a large,
    // well-documented part of PMDK's overhead on top of the barriers.
    dev_.compute(250);

    const std::size_t record_bytes =
        sizeof(RecordHead) + paddedPayload(size);
    if (log.numBytes + record_bytes > kLogCapacity) {
        SPECPMT_FATAL("undo log overflow: tx writes more than %zu bytes",
                      kLogCapacity);
    }

    // Read the pre-update value straight from the device image.
    std::vector<std::uint8_t> old_value(size);
    dev_.load(off, old_value.data(), size);

    RecordHead head;
    head.off = off;
    head.size = size;
    head.pad = 0;
    head.crc = recordCrc(log.txSeq, off, size, old_value.data());

    const PmOff pos = log.recordsOff + log.numBytes;
    dev_.storeT(pos, head);
    dev_.store(pos + sizeof(RecordHead), old_value.data(), size);
    log.numBytes += record_bytes;

    // libpmemobj's tx_add_range persists the snapshot payload and
    // then publishes it through the ulog metadata in a second barrier;
    // this double barrier per first-touch range is a large part of
    // PMDK's measured gap to leaner designs like Kamino-Tx.
    dev_.clwbRange(pos, record_bytes, pmem::TrafficClass::Log);
    dev_.sfence();
    Header header{log.txSeq, 1, log.numBytes, 0};
    dev_.storeT(log.headerOff, header);
    dev_.clwb(log.headerOff, pmem::TrafficClass::Log);
    dev_.sfence();
}

void
PmdkUndoTx::txStore(ThreadId tid, PmOff off, const void *src,
                    std::size_t size)
{
    auto &log = logs_.at(tid);
    SPECPMT_ASSERT(log.inTx);

    // Undo-log only the first update of each byte range (write-set
    // indexing); the persist barrier orders the record before the
    // in-place update below.
    for (const auto &[gap_off, gap_size] : log.loggedSet.uncovered(off,
                                                                   size)) {
        appendRecord(log, gap_off, gap_size);
        log.loggedSet.add(gap_off, gap_size);
    }

    dev_.store(off, src, size);
    log.writeSet.add(off, size);
}

void
PmdkUndoTx::txCommit(ThreadId tid)
{
    auto &log = logs_.at(tid);
    SPECPMT_ASSERT(log.inTx);

    // Persist the data write set, then retire the log.
    SPECPMT_TRACE_SPAN("undo_commit", "flush");
    log.writeSet.forEachLine([&](std::uint64_t line) {
        dev_.clwb(line * kCacheLineSize, pmem::TrafficClass::Data);
    });
    dev_.sfence();

    // libpmemobj additionally processes a metadata redo log at commit
    // (allocator state, lane metadata) under its own persist barrier.
    dev_.storeT<std::uint64_t>(log.headerOff + 24, log.txSeq);
    dev_.clwb(log.headerOff + 24, pmem::TrafficClass::Meta);
    dev_.sfence();

    Header header{log.txSeq, 0, 0, 0};
    dev_.storeT(log.headerOff, header);
    // Rides the log-retire fence below.
    flight_.record(forensic::EventType::TxCommit, tid, log.txSeq);
    dev_.clwb(log.headerOff, pmem::TrafficClass::Log);
    dev_.sfence();

    log.inTx = false;
    log.numBytes = 0;
    log.writeSet.clear();
    log.loggedSet.clear();
    undoMetrics().commits.add();
}

void
PmdkUndoTx::txAbort(ThreadId tid)
{
    auto &log = logs_.at(tid);
    SPECPMT_ASSERT(log.inTx);
    rollbackThread(tid);
    log.inTx = false;
    log.numBytes = 0;
    log.writeSet.clear();
    log.loggedSet.clear();
    undoMetrics().aborts.add();
    flight_.record(forensic::EventType::TxAbort, tid, log.txSeq);
}

void
PmdkUndoTx::rollbackThread(unsigned tid)
{
    auto &log = logs_[tid];
    const Header header = dev_.loadT<Header>(log.headerOff);
    if (!header.active)
        return;

    // Parse forward (records are variable length), validate, then
    // apply in reverse order.
    struct Parsed
    {
        PmOff dataOff;
        PmOff payloadPos;
        std::uint64_t size;
    };
    std::vector<Parsed> records;
    std::uint64_t cursor = 0;
    while (cursor + sizeof(RecordHead) <= header.numBytes) {
        const PmOff pos = log.recordsOff + cursor;
        const auto head = dev_.loadT<RecordHead>(pos);
        if (head.size == 0 ||
            cursor + sizeof(RecordHead) + paddedPayload(head.size) >
                header.numBytes) {
            break;
        }
        std::vector<std::uint8_t> payload(head.size);
        dev_.load(pos + sizeof(RecordHead), payload.data(), head.size);
        if (recordCrc(header.txSeq, head.off, head.size,
                      payload.data()) != head.crc) {
            break; // torn record: it never guarded a data update
        }
        records.push_back({head.off, pos + sizeof(RecordHead),
                           head.size});
        cursor += sizeof(RecordHead) + paddedPayload(head.size);
    }

    for (auto it = records.rbegin(); it != records.rend(); ++it) {
        std::vector<std::uint8_t> payload(it->size);
        dev_.load(it->payloadPos, payload.data(), it->size);
        dev_.store(it->dataOff, payload.data(), it->size);
        dev_.clwbRange(it->dataOff, it->size, pmem::TrafficClass::Data);
    }
    dev_.sfence();

    Header cleared{header.txSeq, 0, 0, 0};
    dev_.storeT(log.headerOff, cleared);
    dev_.clwb(log.headerOff, pmem::TrafficClass::Log);
    dev_.sfence();
    log.numBytes = 0;
}

void
PmdkUndoTx::recover()
{
    SPECPMT_TRACE_SPAN("undo_recover", "recovery");
    undoMetrics().recoveries.add();
    flight_.record(forensic::EventType::RecoveryBegin, 0);
    for (unsigned tid = 0; tid < numThreads_; ++tid) {
        auto &log = logs_[tid];
        log.headerOff = pool_.getRoot(logHeadSlot(tid));
        if (log.headerOff == kPmNull)
            continue;
        log.recordsOff = log.headerOff + kCacheLineSize;
        log.txSeq = dev_.loadT<Header>(log.headerOff).txSeq;
        log.inTx = false;
        rollbackThread(tid);
    }
    flight_.record(forensic::EventType::RecoveryEnd, 0);
    dev_.sfence();
}

// ---------------------------------------------------------------------
// Kamino-Tx (upper bound)
// ---------------------------------------------------------------------

KaminoTx::KaminoTx(pmem::PmemPool &pool, unsigned num_threads)
    : TxRuntime(pool, num_threads), logs_(num_threads)
{
    for (unsigned tid = 0; tid < num_threads; ++tid) {
        auto &log = logs_[tid];
        const PmOff root = pool_.getRoot(logHeadSlot(tid));
        if (root != kPmNull) {
            log.headerOff = root;
            log.recordsOff = root + kCacheLineSize;
            continue;
        }
        log.headerOff = pool_.allocAligned(
            kCacheLineSize + kLogCapacity, kCacheLineSize);
        log.recordsOff = log.headerOff + kCacheLineSize;
        pool_.setRoot(logHeadSlot(tid), log.headerOff);
    }
}

void
KaminoTx::txBegin(ThreadId tid)
{
    auto &log = logs_.at(tid);
    SPECPMT_ASSERT(!log.inTx);
    log.inTx = true;
    log.numBytes = 0;
    log.writeSet.clear();
    log.loggedSet.clear();

    dev_.storeT<std::uint64_t>(log.headerOff, 0);
    dev_.clwb(log.headerOff, pmem::TrafficClass::Log);
    dev_.sfence();
    kaminoMetrics().begins.add();
}

void
KaminoTx::txStore(ThreadId tid, PmOff off, const void *src,
                  std::size_t size)
{
    auto &log = logs_.at(tid);
    SPECPMT_ASSERT(log.inTx);

    // Log (address, size) of each first-touch write intent and persist
    // it before updating the main copy in place — Kamino-Tx needs the
    // address list to know which backup locations to restore from.
    for (const auto &[gap_off, gap_size] : log.loggedSet.uncovered(off,
                                                                   size)) {
        const PmOff pos = log.recordsOff + log.numBytes;
        if (log.numBytes + 16 > kLogCapacity)
            SPECPMT_FATAL("kamino address log overflow");
        dev_.storeT<std::uint64_t>(pos, gap_off);
        dev_.storeT<std::uint64_t>(pos + 8,
                                   static_cast<std::uint64_t>(gap_size));
        log.numBytes += 16;
        dev_.clwbRange(pos, 16, pmem::TrafficClass::Log);
        dev_.storeT<std::uint64_t>(log.headerOff, log.numBytes);
        dev_.clwb(log.headerOff, pmem::TrafficClass::Log);
        dev_.sfence();
        log.loggedSet.add(gap_off, gap_size);
    }

    dev_.store(off, src, size);
    log.writeSet.add(off, size);
}

void
KaminoTx::txCommit(ThreadId tid)
{
    auto &log = logs_.at(tid);
    SPECPMT_ASSERT(log.inTx);

    log.writeSet.forEachLine([&](std::uint64_t line) {
        dev_.clwb(line * kCacheLineSize, pmem::TrafficClass::Data);
    });
    dev_.sfence();

    dev_.storeT<std::uint64_t>(log.headerOff, 0);
    dev_.clwb(log.headerOff, pmem::TrafficClass::Log);
    dev_.sfence();

    log.inTx = false;
    log.writeSet.clear();
    log.loggedSet.clear();
    kaminoMetrics().commits.add();
}

void
KaminoTx::recover()
{
    SPECPMT_WARN("KaminoTx runs in its upper-bound configuration "
                 "(no backup copy, per the paper's methodology); "
                 "crash recovery is not available");
}

} // namespace specpmt::txn
