/**
 * @file
 * Byte-interval write-set index used by the transaction runtimes.
 *
 * Undo logging must log a location only on its *first* update inside a
 * transaction (Section 4: "the first or last update on a datum in a
 * transaction can be discovered via write-set indexing"), and commit
 * must flush each dirty cache line exactly once. Both needs reduce to
 * merged-interval bookkeeping over pool offsets.
 */

#ifndef SPECPMT_TXN_WRITE_SET_HH
#define SPECPMT_TXN_WRITE_SET_HH

#include <cstddef>
#include <map>
#include <utility>
#include <vector>

#include "common/types.hh"

namespace specpmt::txn
{

/** A set of disjoint, merged byte intervals [start, end). */
class WriteSet
{
  public:
    /** Record that [off, off+size) has been written. */
    void add(PmOff off, std::size_t size);

    /** True if every byte of [off, off+size) was previously added. */
    bool covered(PmOff off, std::size_t size) const;

    /**
     * The sub-ranges of [off, off+size) not yet in the set, in
     * ascending order. Used to log only first updates.
     */
    std::vector<std::pair<PmOff, std::size_t>>
    uncovered(PmOff off, std::size_t size) const;

    /** Invoke @p fn for every disjoint interval (start, length). */
    template <typename Fn>
    void
    forEachInterval(Fn &&fn) const
    {
        for (const auto &[start, end] : intervals_)
            fn(start, static_cast<std::size_t>(end - start));
    }

    /** Invoke @p fn once per distinct cache line the set touches. */
    template <typename Fn>
    void
    forEachLine(Fn &&fn) const
    {
        std::uint64_t prev_line = ~0ull;
        for (const auto &[start, end] : intervals_) {
            for (std::uint64_t line = lineIndex(start);
                 line <= lineIndex(end - 1); ++line) {
                if (line != prev_line) {
                    fn(line);
                    prev_line = line;
                }
            }
        }
    }

    /** Number of distinct cache lines covered. */
    std::uint64_t lineCount() const;

    /** Total bytes covered. */
    std::uint64_t byteCount() const;

    /** Number of disjoint intervals. */
    std::size_t intervalCount() const { return intervals_.size(); }

    bool empty() const { return intervals_.empty(); }

    void clear() { intervals_.clear(); }

  private:
    /** start -> end, disjoint and non-adjacent after merging. */
    std::map<PmOff, PmOff> intervals_;
};

} // namespace specpmt::txn

#endif // SPECPMT_TXN_WRITE_SET_HH
