/**
 * @file
 * Striped lock table for application-level isolation.
 *
 * SpecPMT provides atomic durability and, like the transactions it is
 * compared against, leaves isolation to the application
 * (Section 4.3.3: strict two-phase locking or optimistic schemes).
 * This helper gives multi-threaded callers a deadlock-free way to
 * lock the persistent locations a transaction will touch: locks are
 * striped by address and always acquired in ascending stripe order.
 */

#ifndef SPECPMT_TXN_LOCK_TABLE_HH
#define SPECPMT_TXN_LOCK_TABLE_HH

#include <algorithm>
#include <mutex>
#include <vector>

#include "common/hash.hh"
#include "common/types.hh"

namespace specpmt::txn
{

/** Striped mutex table; see file comment. */
class LockTable
{
  public:
    explicit LockTable(unsigned stripes = 64) : stripes_(stripes) {}

    /** Stripe index guarding @p off. */
    unsigned
    stripeOf(PmOff off) const
    {
        return static_cast<unsigned>(mix64(lineIndex(off)) %
                                     stripes_.size());
    }

    /**
     * RAII guard holding the stripes for a set of addresses. The
     * stripes are locked in ascending order (two-phase locking with
     * a global order), so concurrent transactions cannot deadlock.
     */
    class Guard
    {
      public:
        Guard(LockTable &table, std::vector<PmOff> addresses)
            : table_(&table)
        {
            stripes_.reserve(addresses.size());
            for (PmOff off : addresses)
                stripes_.push_back(table.stripeOf(off));
            std::sort(stripes_.begin(), stripes_.end());
            stripes_.erase(
                std::unique(stripes_.begin(), stripes_.end()),
                stripes_.end());
            for (unsigned stripe : stripes_)
                table_->stripes_[stripe].lock();
        }

        ~Guard()
        {
            for (auto it = stripes_.rbegin(); it != stripes_.rend();
                 ++it) {
                table_->stripes_[*it].unlock();
            }
        }

        Guard(const Guard &) = delete;
        Guard &operator=(const Guard &) = delete;

      private:
        LockTable *table_;
        std::vector<unsigned> stripes_;
    };

    /** Lock the stripes covering @p addresses for the guard's life. */
    Guard
    lockAll(std::vector<PmOff> addresses)
    {
        return Guard(*this, std::move(addresses));
    }

  private:
    friend class Guard;
    /** deque-free stable storage for the mutexes. */
    struct Stripes
    {
        explicit Stripes(unsigned count) : mutexes(count) {}
        std::vector<std::mutex> mutexes;
        std::mutex &operator[](unsigned i) { return mutexes[i]; }
        std::size_t size() const { return mutexes.size(); }
    };

    Stripes stripes_;
};

} // namespace specpmt::txn

#endif // SPECPMT_TXN_LOCK_TABLE_HH
