/**
 * @file
 * SPHT-style redo logging transactions (Castro et al., FAST'21), the
 * state-of-the-art software comparator in the paper's Figure 12.
 *
 * Transactions execute against a *volatile working copy* of the data
 * (SPHT's "volatile data snapshot"); each commit persists one redo
 * record — the write intents plus a checksummed, timestamped header —
 * with a single persist barrier (SPHT's forward-linking commit). A
 * background replayer thread applies committed records to the
 * persistent data copy off the critical path and recycles log space.
 *
 * The differences from SpecPMT that the paper calls out are visible
 * in this implementation: every load/store is indirected through the
 * working copy, data reaches PM only via the replayer (out-of-place),
 * and log records cannot be reclaimed until the replayer has persisted
 * the data they describe.
 */

#ifndef SPECPMT_TXN_SPHT_TX_HH
#define SPECPMT_TXN_SPHT_TX_HH

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <mutex>
#include <thread>
#include <vector>

#include "forensic/flight_recorder.hh"
#include "txn/tx_runtime.hh"

namespace specpmt::txn
{

/** Redo-logging runtime with a background log replayer (SPHT analog). */
class SphtTx : public TxRuntime
{
  public:
    /** Per-thread persistent log area capacity. */
    static constexpr std::size_t kLogCapacity = 1u << 22;

    /**
     * @param pool          Pool to operate on.
     * @param num_threads   Worker thread count.
     * @param start_replayer  Set false in unit tests that drive the
     *                        replayer synchronously via drainReplayer().
     */
    SphtTx(pmem::PmemPool &pool, unsigned num_threads,
           bool start_replayer = true);

    ~SphtTx() override;

    const char *name() const override { return "spht"; }

    void txBegin(ThreadId tid) override;
    void txStore(ThreadId tid, PmOff off, const void *src,
                 std::size_t size) override;
    void txLoad(ThreadId tid, PmOff off, void *dst,
                std::size_t size) override;
    void txCommit(ThreadId tid) override;

    void recover() override;
    void shutdown() override;

    /** Synchronously apply every queued committed record (tests). */
    void drainReplayer();

  private:
    struct Entry
    {
        PmOff off;
        std::uint32_t size;
        std::vector<std::uint8_t> value;
    };

    struct Segment
    {
        unsigned tid;
        std::uint64_t endBytes; ///< log tail after this record
        std::vector<Entry> entries;
    };

    struct ThreadLog
    {
        PmOff headerOff = kPmNull;
        PmOff recordsOff = kPmNull;
        std::uint64_t generation = 0;
        std::uint64_t tailBytes = 0;
        std::atomic<std::uint64_t> appliedBytes{0};
        bool inTx = false;
        std::vector<Entry> staged;
    };

    void replayerMain();
    void applySegment(const Segment &segment);
    void initThreadLog(unsigned tid);
    /** Recycle the log area when fully applied; may wait for space. */
    void ensureSpace(ThreadLog &log, std::size_t bytes);

    /** Disabled unless the pool carries a flight-recorder ring. */
    forensic::FlightRecorder flight_;
    std::vector<std::unique_ptr<ThreadLog>> logs_;

    std::mutex queueMutex_;
    std::condition_variable queueCv_;
    std::condition_variable spaceCv_;
    std::deque<Segment> queue_;
    bool stop_ = false;
    std::thread replayer_;

    /** The volatile working copy of the whole pool. */
    std::vector<std::uint8_t> mirror_;
};

} // namespace specpmt::txn

#endif // SPECPMT_TXN_SPHT_TX_HH
