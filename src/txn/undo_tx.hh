/**
 * @file
 * PMDK-style undo logging transactions — the paper's software baseline.
 *
 * Before each first-in-transaction update of a location, the old value
 * is appended to a per-thread persistent undo log and persisted with a
 * full persist barrier (clwb + sfence) *before* the in-place data
 * store executes. Commit flushes the data write set, fences, then
 * invalidates the log. This is the fence-per-update pattern whose cost
 * (~460% overhead on STAMP, Figure 1) motivates SpecPMT.
 */

#ifndef SPECPMT_TXN_UNDO_TX_HH
#define SPECPMT_TXN_UNDO_TX_HH

#include <cstdint>
#include <vector>

#include "forensic/flight_recorder.hh"
#include "txn/tx_runtime.hh"
#include "txn/write_set.hh"

namespace specpmt::txn
{

/**
 * Undo-logging runtime (PMDK analog).
 *
 * Per-thread persistent log area layout:
 *   [UndoLogHeader (one cache line)] [record bytes ...]
 * Record: [crc32:4][pad:4][off:8][size:8][old bytes, 8-aligned].
 * The crc is seeded with the header's transaction sequence number so
 * records left over from earlier transactions can never validate.
 */
class PmdkUndoTx : public TxRuntime
{
  public:
    /** Per-thread log area capacity (generous for STAMP-scale txs). */
    static constexpr std::size_t kLogCapacity = 1u << 22;

    PmdkUndoTx(pmem::PmemPool &pool, unsigned num_threads);

    const char *name() const override { return "pmdk"; }

    void txBegin(ThreadId tid) override;
    void txStore(ThreadId tid, PmOff off, const void *src,
                 std::size_t size) override;
    void txCommit(ThreadId tid) override;

    /** Abort the open transaction by applying its undo log. */
    void txAbort(ThreadId tid);

    void recover() override;

  private:
    struct Header
    {
        std::uint64_t txSeq;
        std::uint64_t active;
        std::uint64_t numBytes;
        std::uint64_t pad;
    };
    static_assert(sizeof(Header) <= kCacheLineSize);

    struct ThreadLog
    {
        PmOff headerOff = kPmNull; ///< header location in PM
        PmOff recordsOff = kPmNull; ///< first record byte
        std::uint64_t txSeq = 0;   ///< cached header.txSeq
        std::uint64_t numBytes = 0; ///< cached header.numBytes
        bool inTx = false;
        WriteSet writeSet;  ///< data bytes updated this tx
        WriteSet loggedSet; ///< data bytes already undo-logged this tx
    };

    /** Append and persist one undo record; returns bytes consumed. */
    void appendRecord(ThreadLog &log, PmOff off, std::size_t size);

    /** Parse + apply a thread's undo records in reverse; clear log. */
    void rollbackThread(unsigned tid);

    /** Disabled unless the pool carries a flight-recorder ring. */
    forensic::FlightRecorder flight_;
    std::vector<ThreadLog> logs_;
};

/**
 * Kamino-Tx in its *upper bound* configuration, exactly as the paper
 * evaluates it (Section 7.1.2): every write intent's address is logged
 * and persisted (clwb + sfence) before the in-place update, but the
 * backup-copy maintenance that real Kamino-Tx needs for recovery is
 * omitted. Consequently this runtime is NOT recoverable — it exists to
 * reproduce the performance comparison, and recover() warns.
 */
class KaminoTx : public TxRuntime
{
  public:
    static constexpr std::size_t kLogCapacity = 1u << 21;

    KaminoTx(pmem::PmemPool &pool, unsigned num_threads);

    const char *name() const override { return "kamino-tx"; }

    void txBegin(ThreadId tid) override;
    void txStore(ThreadId tid, PmOff off, const void *src,
                 std::size_t size) override;
    void txCommit(ThreadId tid) override;
    void recover() override;

  private:
    struct ThreadLog
    {
        PmOff headerOff = kPmNull;
        PmOff recordsOff = kPmNull;
        std::uint64_t numBytes = 0;
        bool inTx = false;
        WriteSet writeSet;
        WriteSet loggedSet;
    };

    std::vector<ThreadLog> logs_;
};

} // namespace specpmt::txn

#endif // SPECPMT_TXN_UNDO_TX_HH
