/**
 * @file
 * Memory-operation traces: the interface between the STAMP-analog
 * workloads and the hardware simulator (Section 7.1.3's gem5 analog).
 *
 * A workload runs once against a TraceRecorder runtime; the recorded
 * per-thread operation stream is then replayed through each hardware
 * runtime model (EDE, HOOP, SpecHPMT, ...) so that every scheme is
 * charged for exactly the same program behaviour.
 */

#ifndef SPECPMT_TXN_TRACE_HH
#define SPECPMT_TXN_TRACE_HH

#include <cstdint>
#include <vector>

#include "common/types.hh"

namespace specpmt::txn
{

/** One traced operation. */
enum class MemOpKind : std::uint8_t
{
    TxBegin,
    TxCommit,
    Store,   ///< transactional durable store
    Load,    ///< durable load
    Compute, ///< non-memory work (ns)
};

/** A trace element; offsets are pool offsets (unit-stride "physical"). */
struct MemOp
{
    MemOpKind kind;
    std::uint8_t pad[3] = {0, 0, 0};
    ThreadId tid = 0;
    PmOff off = 0;
    std::uint32_t size = 0;
    std::uint32_t computeNs = 0;
};

/** A whole-program trace plus summary statistics. */
struct MemTrace
{
    std::vector<MemOp> ops;

    std::uint64_t numTx = 0;
    /** Persistent-heap bytes live when the trace was recorded. */
    std::uint64_t residentBytes = 0;
    std::uint64_t numUpdates = 0;      ///< transactional stores
    std::uint64_t updateBytes = 0;     ///< bytes written in txs
    std::uint64_t numLoads = 0;

    /** Average durable write-set bytes per transaction (Table 2). */
    double
    avgTxBytes() const
    {
        return numTx == 0
            ? 0.0
            : static_cast<double>(updateBytes) /
                  static_cast<double>(numTx);
    }
};

} // namespace specpmt::txn

#endif // SPECPMT_TXN_TRACE_HH
