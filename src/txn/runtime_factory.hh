/**
 * @file
 * Name-based factory for transaction runtimes.
 *
 * The bench harness, the examples, the KV service and the CLIs all
 * need to turn a scheme name ("spec", "pmdk", ...) into a constructed
 * TxRuntime; this is the single place that switch lives. The header
 * sits in txn/ next to the interface it constructs, but because the
 * factory also builds the core-layer runtimes (SpecTx, HashLogTx) its
 * implementation is compiled into specpmt_core.
 */

#ifndef SPECPMT_TXN_RUNTIME_FACTORY_HH
#define SPECPMT_TXN_RUNTIME_FACTORY_HH

#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "txn/tx_runtime.hh"

namespace specpmt::txn
{

/** Construction knobs shared by every scheme (unused ones ignored). */
struct RuntimeOptions
{
    /**
     * Start background helper threads (SPHT's replayer, SpecTx's
     * reclaimer). Crash-injection tests run single-threaded and turn
     * this off for determinism.
     */
    bool backgroundWorkers = true;
    /** SpecTx log block size in bytes (0 = scheme default). */
    std::size_t specLogBlockSize = 0;
    /** SpecTx implicit reclamation trigger, in live log bytes. */
    std::size_t specReclaimThresholdBytes = 8u << 20;
    /** HashLogTx hash-table slot count. */
    std::size_t hashLogSlots = 1u << 18;
    /**
     * Enable epoch group commit on runtimes that support it ("spec",
     * "spec-dp"): txCommitRelaxed() defers the commit fence into a
     * runtime-wide epoch sealed by sealEpoch(). Ignored by the other
     * schemes, whose groupCommitSupported() stays false.
     */
    bool groupCommit = false;
};

/**
 * Every scheme name makeRuntime() accepts:
 * "direct", "pmdk", "kamino", "spht", "spec", "spec-dp", "hashlog".
 */
const std::vector<std::string> &runtimeNames();

/** True if @p name is a known scheme name. */
bool isRuntimeName(std::string_view name);

/**
 * The subset of runtimeNames() whose recover() restores atomic
 * durability after a power failure: "pmdk", "spht", "spec",
 * "spec-dp". The others are performance baselines ("direct",
 * "kamino") or a rejected design strawman ("hashlog") and must not be
 * offered where crash recovery is relied upon (crash exploration,
 * serving state).
 */
const std::vector<std::string> &recoverableRuntimeNames();

/** True if @p name names a recoverable scheme. */
bool isRecoverableRuntimeName(std::string_view name);

/**
 * Construct the runtime named @p name over @p pool for
 * @p num_threads workers. Panics on an unknown name — validate user
 * input with isRuntimeName() first.
 */
std::unique_ptr<TxRuntime> makeRuntime(std::string_view name,
                                       pmem::PmemPool &pool,
                                       unsigned num_threads,
                                       const RuntimeOptions &options = {});

} // namespace specpmt::txn

#endif // SPECPMT_TXN_RUNTIME_FACTORY_HH
