/**
 * @file
 * The persistent transaction runtime interface shared by every crash
 * consistency mechanism in this repository: the paper's SpecPMT, the
 * baselines it compares against (PMDK-style undo, Kamino-Tx, SPHT),
 * the no-consistency baseline, and the trace recorder that feeds the
 * hardware simulator.
 *
 * The API mirrors the classical persistent memory transaction model
 * (Figure 3): tx_begin / in-place updates / tx_commit, plus a
 * post-crash recover() entry point. Concurrency control (isolation)
 * is the application's job, as in the paper (Section 4.3.3): callers
 * must de-conflict transactions with their own locking.
 */

#ifndef SPECPMT_TXN_TX_RUNTIME_HH
#define SPECPMT_TXN_TX_RUNTIME_HH

#include <atomic>
#include <cstddef>
#include <type_traits>

#include "common/types.hh"
#include "pmem/pmem_pool.hh"

namespace specpmt::txn
{

/** Root directory slot holding thread @p tid 's log-area head. */
constexpr unsigned
logHeadSlot(ThreadId tid)
{
    return 1 + tid;
}

/**
 * Root directory slot pointing at the epoch frontier record of a pool
 * operated in group-commit mode (kPmNull on strict-only pools). The
 * slot doubles as the persistent "this pool uses epochs" flag that
 * recovery and the offline inspector consult to pick the replay rule.
 */
constexpr unsigned kEpochFrontierSlot = 39;

/** First root directory slot free for application data roots. */
constexpr unsigned kAppRootSlotBase = 40;

/**
 * Abstract atomic-durability runtime.
 *
 * All persistent writes performed between txBegin(tid) and
 * txCommit(tid) on the same thread are crash-atomic: after recover(),
 * either all or none of them are observable (DirectTx and the
 * Kamino-Tx upper-bound variant intentionally break this — see their
 * headers).
 */
class TxRuntime
{
  public:
    /**
     * @param pool         Pool the runtime logs into / operates on.
     * @param num_threads  Number of worker threads that will run
     *                     transactions (thread ids 0..n-1).
     */
    TxRuntime(pmem::PmemPool &pool, unsigned num_threads)
        : pool_(pool), dev_(pool.device()), numThreads_(num_threads)
    {}

    virtual ~TxRuntime() = default;

    TxRuntime(const TxRuntime &) = delete;
    TxRuntime &operator=(const TxRuntime &) = delete;

    /** Short scheme name, e.g. "pmdk", "spec-spmt". */
    virtual const char *name() const = 0;

    /** Open a transaction on thread @p tid. */
    virtual void txBegin(ThreadId tid) = 0;

    /** Transactional in-place store of @p size bytes at @p off. */
    virtual void txStore(ThreadId tid, PmOff off, const void *src,
                         std::size_t size) = 0;

    /** Transactional load (redirectable by out-of-place schemes). */
    virtual void
    txLoad(ThreadId tid, PmOff off, void *dst, std::size_t size)
    {
        (void)tid;
        dev_.load(off, dst, size);
    }

    /** Commit the open transaction on thread @p tid. */
    virtual void txCommit(ThreadId tid) = 0;

    /**
     * Abort the open transaction on thread @p tid, rolling back its
     * speculative writes where the scheme supports rollback. This is
     * the error boundary the serving tier unwinds through when a
     * media fault (pmem::MediaError) or log-space exhaustion
     * (pmem::PoolExhausted) surfaces mid-transaction. Default: no-op
     * for schemes without abort support.
     */
    virtual void txAbort(ThreadId tid) { (void)tid; }

    /**
     * Log segments quarantined by this runtime's recovery walks as
     * media-corrupted (CRC-failing but provably not a torn tail).
     * Surfaces in /healthz and pminspect; 0 for schemes without a
     * quarantining walker.
     */
    virtual std::uint64_t quarantinedSegments() const { return 0; }

    /** @name Epoch group commit (optional capability) */
    /// @{

    /** True if this runtime can defer durability into epochs. */
    virtual bool groupCommitSupported() const { return false; }

    /**
     * Commit the open transaction on thread @p tid *without* waiting
     * for durability: the transaction is immediately visible (DRAM
     * latest view) and joins the current epoch, which a later
     * sealEpoch() makes durable with one shared flush+fence batch.
     *
     * @return The epoch ticket the commit joined; the transaction is
     *         durable once lastSealedEpoch() >= ticket. Runtimes
     *         without group-commit support fall back to a strict
     *         commit and return 0 (already durable).
     */
    virtual std::uint64_t
    txCommitRelaxed(ThreadId tid)
    {
        txCommit(tid);
        return 0;
    }

    /**
     * Flush and fence every relaxed commit not yet sealed (the epoch
     * fence). Safe to call from any thread, including one that never
     * runs transactions.
     *
     * @return The highest sealed epoch ticket.
     */
    virtual std::uint64_t sealEpoch() { return 0; }

    /** Highest epoch ticket whose members are durable. */
    virtual std::uint64_t lastSealedEpoch() const { return 0; }

    /// @}

    /**
     * Post-crash recovery: restore the pool's data to the most recent
     * prefix-consistent committed state using the persistent logs.
     * Called on a freshly re-opened pool.
     */
    virtual void recover() {}

    /**
     * Clean shutdown: drain background threads and persist all durable
     * data (the Section 4.3.1 mechanism-switch flush).
     */
    virtual void shutdown() { dev_.drainAll(); }

    /** Charge non-memory computation on the virtual clock. */
    virtual void
    compute(ThreadId tid, SimNs ns)
    {
        (void)tid;
        dev_.compute(ns);
    }

    /** @name Typed convenience wrappers */
    /// @{
    template <typename T>
    void
    txStoreT(ThreadId tid, PmOff off, const T &value)
    {
        static_assert(std::is_trivially_copyable_v<T>);
        txStore(tid, off, &value, sizeof(T));
    }

    template <typename T>
    T
    txLoadT(ThreadId tid, PmOff off)
    {
        static_assert(std::is_trivially_copyable_v<T>);
        T value;
        txLoad(tid, off, &value, sizeof(T));
        return value;
    }
    /// @}

    pmem::PmemPool &pool() { return pool_; }
    pmem::PmemDevice &device() { return dev_; }
    unsigned numThreads() const { return numThreads_; }

  protected:
    /** Monotonic commit timestamp source (the rdtscp analog). */
    TxTimestamp
    nextTimestamp()
    {
        return timestampCounter_.fetch_add(1, std::memory_order_relaxed)
            + 1;
    }

    /**
     * Advance the timestamp source past @p seen. The real hardware
     * timestamp counter is monotonic across process restarts; recovery
     * re-establishes that invariant for this software analog so that
     * post-recovery records always sort after surviving ones.
     */
    /** Highest timestamp handed out (or seeded) so far. */
    TxTimestamp
    currentTimestamp() const
    {
        return timestampCounter_.load(std::memory_order_relaxed);
    }

    void
    seedTimestamp(TxTimestamp seen)
    {
        TxTimestamp current = timestampCounter_.load();
        while (seen > current &&
               !timestampCounter_.compare_exchange_weak(current, seen)) {
        }
    }

    pmem::PmemPool &pool_;
    pmem::PmemDevice &dev_;
    unsigned numThreads_;

  private:
    std::atomic<TxTimestamp> timestampCounter_{0};
};

/**
 * The crash-consistency-free baseline: plain in-place stores, no
 * logging, no flushing. This is the "version without persistent
 * memory transactions" that Figure 1's overheads are measured
 * against.
 */
class DirectTx : public TxRuntime
{
  public:
    using TxRuntime::TxRuntime;

    const char *name() const override { return "direct"; }

    void txBegin(ThreadId) override {}

    void
    txStore(ThreadId, PmOff off, const void *src,
            std::size_t size) override
    {
        dev_.store(off, src, size);
    }

    void txCommit(ThreadId) override {}
};

} // namespace specpmt::txn

#endif // SPECPMT_TXN_TX_RUNTIME_HH
