#include "txn/runtime_factory.hh"

#include <algorithm>

#include "common/logging.hh"
#include "core/hash_log_tx.hh"
#include "core/spec_tx.hh"
#include "txn/spht_tx.hh"
#include "txn/undo_tx.hh"

namespace specpmt::txn
{

const std::vector<std::string> &
runtimeNames()
{
    static const std::vector<std::string> names = {
        "direct", "pmdk", "kamino", "spht",
        "spec",   "spec-dp", "hashlog",
    };
    return names;
}

bool
isRuntimeName(std::string_view name)
{
    const auto &names = runtimeNames();
    return std::find(names.begin(), names.end(), name) != names.end();
}

const std::vector<std::string> &
recoverableRuntimeNames()
{
    static const std::vector<std::string> names = {
        "pmdk", "spht", "spec", "spec-dp",
    };
    return names;
}

bool
isRecoverableRuntimeName(std::string_view name)
{
    const auto &names = recoverableRuntimeNames();
    return std::find(names.begin(), names.end(), name) != names.end();
}

std::unique_ptr<TxRuntime>
makeRuntime(std::string_view name, pmem::PmemPool &pool,
            unsigned num_threads, const RuntimeOptions &options)
{
    if (name == "direct")
        return std::make_unique<DirectTx>(pool, num_threads);
    if (name == "pmdk")
        return std::make_unique<PmdkUndoTx>(pool, num_threads);
    if (name == "kamino")
        return std::make_unique<KaminoTx>(pool, num_threads);
    if (name == "spht") {
        return std::make_unique<SphtTx>(pool, num_threads,
                                        options.backgroundWorkers);
    }
    if (name == "spec" || name == "spec-dp") {
        core::SpecTxConfig config;
        config.dataPersistOnCommit = (name == "spec-dp");
        config.backgroundReclaim = options.backgroundWorkers;
        if (options.specLogBlockSize != 0)
            config.logBlockSize = options.specLogBlockSize;
        config.reclaimThresholdBytes =
            options.specReclaimThresholdBytes;
        config.groupCommit = options.groupCommit;
        return std::make_unique<core::SpecTx>(pool, num_threads,
                                              config);
    }
    if (name == "hashlog") {
        return std::make_unique<core::HashLogTx>(pool, num_threads,
                                                 options.hashLogSlots);
    }
    SPECPMT_PANIC("unknown runtime name: %.*s",
                  static_cast<int>(name.size()), name.data());
}

} // namespace specpmt::txn
