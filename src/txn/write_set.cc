#include "txn/write_set.hh"

#include "common/logging.hh"

namespace specpmt::txn
{

void
WriteSet::add(PmOff off, std::size_t size)
{
    if (size == 0)
        return;
    PmOff start = off;
    PmOff end = off + size;
    SPECPMT_ASSERT(end > start);

    // Find the first interval that could overlap or touch [start, end).
    auto it = intervals_.upper_bound(start);
    if (it != intervals_.begin()) {
        auto prev = std::prev(it);
        if (prev->second >= start)
            it = prev;
    }
    // Absorb every overlapping/adjacent interval.
    while (it != intervals_.end() && it->first <= end) {
        if (it->first < start)
            start = it->first;
        if (it->second > end)
            end = it->second;
        it = intervals_.erase(it);
    }
    intervals_.emplace(start, end);
}

bool
WriteSet::covered(PmOff off, std::size_t size) const
{
    if (size == 0)
        return true;
    auto it = intervals_.upper_bound(off);
    if (it == intervals_.begin())
        return false;
    --it;
    return it->first <= off && it->second >= off + size;
}

std::vector<std::pair<PmOff, std::size_t>>
WriteSet::uncovered(PmOff off, std::size_t size) const
{
    std::vector<std::pair<PmOff, std::size_t>> gaps;
    if (size == 0)
        return gaps;
    PmOff cursor = off;
    const PmOff end = off + size;

    auto it = intervals_.upper_bound(cursor);
    if (it != intervals_.begin()) {
        auto prev = std::prev(it);
        if (prev->second > cursor)
            cursor = std::min(prev->second, end);
    }
    while (cursor < end) {
        // `it` is the first interval starting after the original start;
        // walk it forward to the first interval at/after cursor.
        while (it != intervals_.end() && it->second <= cursor)
            ++it;
        if (it == intervals_.end() || it->first >= end) {
            gaps.emplace_back(cursor, end - cursor);
            break;
        }
        if (it->first > cursor)
            gaps.emplace_back(cursor, it->first - cursor);
        cursor = std::min(it->second, end);
        ++it;
    }
    return gaps;
}

std::uint64_t
WriteSet::lineCount() const
{
    std::uint64_t count = 0;
    forEachLine([&](std::uint64_t) { ++count; });
    return count;
}

std::uint64_t
WriteSet::byteCount() const
{
    std::uint64_t bytes = 0;
    for (const auto &[start, end] : intervals_)
        bytes += end - start;
    return bytes;
}

} // namespace specpmt::txn
