#include "txn/spht_tx.hh"

#include <algorithm>
#include <cstring>

#include "common/crc32.hh"
#include "common/logging.hh"
#include "obs/metrics.hh"
#include "obs/trace.hh"

namespace specpmt::txn
{

namespace
{

/** SPHT runtime counters, registered once per process. */
struct SphtMetrics
{
    obs::Counter &begins;
    obs::Counter &commits;
    obs::Counter &replayedSegments;
    obs::Counter &recoveries;

    static SphtMetrics &
    get()
    {
        auto &reg = obs::Registry::global();
        const obs::Labels labels{{"runtime", "spht"}};
        static SphtMetrics m{
            reg.counter("specpmt_txn_begins_total",
                        "transactions started, by runtime", labels),
            reg.counter("specpmt_txn_commits_total",
                        "transactions committed, by runtime", labels),
            reg.counter("specpmt_spht_replayed_segments_total",
                        "log segments applied by the SPHT replayer"),
            reg.counter("specpmt_txn_recoveries_total",
                        "post-crash recoveries, by runtime", labels),
        };
        return m;
    }
};

struct RecHead
{
    std::uint32_t crc;
    std::uint32_t sizeBytes;
    std::uint64_t timestamp;
};

struct EntryHead
{
    std::uint64_t off;
    std::uint32_t size;
    std::uint32_t pad;
};

constexpr std::size_t
paddedPayload(std::size_t size)
{
    return (size + 7) & ~std::size_t{7};
}

std::uint32_t
seedCrc(std::uint64_t generation, unsigned tid, std::uint64_t pos)
{
    std::uint32_t crc = crc32c(&generation, sizeof(generation));
    const std::uint64_t id = (static_cast<std::uint64_t>(tid) << 48) | pos;
    return crc32c(&id, sizeof(id), crc);
}

} // namespace

SphtTx::SphtTx(pmem::PmemPool &pool, unsigned num_threads,
               bool start_replayer)
    : TxRuntime(pool, num_threads),
      flight_(forensic::FlightRecorder::attach(pool))
{
    logs_.reserve(num_threads);
    for (unsigned tid = 0; tid < num_threads; ++tid) {
        logs_.push_back(std::make_unique<ThreadLog>());
        initThreadLog(tid);
    }
    mirror_.assign(dev_.raw(), dev_.raw() + dev_.size());
    if (start_replayer)
        replayer_ = std::thread([this] { replayerMain(); });
}

SphtTx::~SphtTx()
{
    if (replayer_.joinable()) {
        {
            std::lock_guard<std::mutex> guard(queueMutex_);
            stop_ = true;
        }
        queueCv_.notify_all();
        replayer_.join();
    }
}

void
SphtTx::initThreadLog(unsigned tid)
{
    auto &log = *logs_[tid];
    const PmOff root = pool_.getRoot(logHeadSlot(tid));
    if (root != kPmNull) {
        // Re-opening an existing pool (e.g. after a crash): adopt the
        // surviving log area; recover() decides what is in it.
        log.headerOff = root;
        log.recordsOff = root + kCacheLineSize;
        log.generation = dev_.loadT<std::uint64_t>(root);
        return;
    }
    log.headerOff = pool_.allocAligned(kCacheLineSize + kLogCapacity,
                                       kCacheLineSize);
    log.recordsOff = log.headerOff + kCacheLineSize;
    log.generation = 1;
    dev_.storeT<std::uint64_t>(log.headerOff, log.generation);
    dev_.clwb(log.headerOff, pmem::TrafficClass::Log);
    dev_.sfence();
    pool_.setRoot(logHeadSlot(tid), log.headerOff);
}

void
SphtTx::txBegin(ThreadId tid)
{
    auto &log = *logs_.at(tid);
    SPECPMT_ASSERT(!log.inTx);
    log.inTx = true;
    log.staged.clear();
    SphtMetrics::get().begins.add();
    flight_.record(forensic::EventType::TxBegin, tid);
}

void
SphtTx::txStore(ThreadId tid, PmOff off, const void *src,
                std::size_t size)
{
    auto &log = *logs_.at(tid);
    SPECPMT_ASSERT(log.inTx);
    SPECPMT_ASSERT(off + size <= mirror_.size());

    // Update the volatile working copy and stage the write intent.
    // The factor over a plain store reflects SPHT's instrumentation:
    // the snapshot write plus redo-buffer staging and bookkeeping.
    std::memcpy(mirror_.data() + off, src, size);
    dev_.compute(3 * dev_.timing().params().storeNs *
                 lineSpan(off, size));

    Entry entry;
    entry.off = off;
    entry.size = static_cast<std::uint32_t>(size);
    entry.value.assign(static_cast<const std::uint8_t *>(src),
                       static_cast<const std::uint8_t *>(src) + size);
    log.staged.push_back(std::move(entry));
}

void
SphtTx::txLoad(ThreadId tid, PmOff off, void *dst, std::size_t size)
{
    (void)tid;
    SPECPMT_ASSERT(off + size <= mirror_.size());
    std::memcpy(dst, mirror_.data() + off, size);
    dev_.compute(2 * dev_.timing().params().loadNs *
                 lineSpan(off, size));
}

void
SphtTx::ensureSpace(ThreadLog &log, std::size_t bytes)
{
    if (log.tailBytes + bytes <= kLogCapacity)
        return;

    // The log is full; it can be recycled once the replayer has
    // persisted everything in it.
    if (!replayer_.joinable())
        drainReplayer();
    {
        std::unique_lock<std::mutex> lock(queueMutex_);
        spaceCv_.wait(lock, [&] {
            return log.appliedBytes.load() >= log.tailBytes;
        });
    }

    // Recycle: a new generation invalidates every stale record byte.
    ++log.generation;
    dev_.storeT<std::uint64_t>(log.headerOff, log.generation);
    dev_.clwb(log.headerOff, pmem::TrafficClass::Log);
    dev_.sfence();
    log.tailBytes = 0;
    log.appliedBytes.store(0);

    if (bytes > kLogCapacity)
        SPECPMT_FATAL("spht: transaction larger than the log area");
}

void
SphtTx::txCommit(ThreadId tid)
{
    auto &log = *logs_.at(tid);
    SPECPMT_ASSERT(log.inTx);
    log.inTx = false;
    if (log.staged.empty())
        return;

    // SPHT serializes commits through its global log: claiming the
    // log position and writing the forward link is a shared,
    // contended path charged here as fixed commit work.
    dev_.compute(400);

    std::size_t record_bytes = sizeof(RecHead);
    for (const auto &entry : log.staged)
        record_bytes += sizeof(EntryHead) + paddedPayload(entry.size);
    ensureSpace(log, record_bytes);

    const PmOff pos = log.recordsOff + log.tailBytes;
    const TxTimestamp ts = nextTimestamp();

    // Serialize entries after the header slot.
    PmOff cursor = pos + sizeof(RecHead);
    std::uint32_t crc = seedCrc(log.generation, tid, log.tailBytes);
    crc = crc32c(&ts, sizeof(ts), crc);
    for (const auto &entry : log.staged) {
        EntryHead head{entry.off, entry.size, 0};
        dev_.storeT(cursor, head);
        dev_.store(cursor + sizeof(EntryHead), entry.value.data(),
                   entry.size);
        crc = crc32c(&head, sizeof(head), crc);
        crc = crc32c(entry.value.data(), entry.size, crc);
        cursor += sizeof(EntryHead) + paddedPayload(entry.size);
    }

    RecHead head;
    head.crc = crc;
    head.sizeBytes = static_cast<std::uint32_t>(record_bytes);
    head.timestamp = ts;
    dev_.storeT(pos, head);

    // Poison the next header position so recovery cannot misparse
    // stale bytes as a fresh record.
    if (log.tailBytes + record_bytes + sizeof(std::uint32_t) <=
        kLogCapacity) {
        dev_.storeT<std::uint32_t>(pos + record_bytes, 0);
    }

    // SPHT forward-linked commit: one flush batch, one fence.
    {
        SPECPMT_TRACE_SPAN("flush_batch", "flush");
        dev_.clwbRange(pos, record_bytes + sizeof(std::uint32_t),
                       pmem::TrafficClass::Log);
        // Rides the commit fence below.
        flight_.record(forensic::EventType::TxCommit, tid, ts,
                       log.staged.size());
        dev_.sfence();
    }
    SphtMetrics::get().commits.add();

    log.tailBytes += record_bytes;

    Segment segment;
    segment.tid = tid;
    segment.endBytes = log.tailBytes;
    segment.entries = std::move(log.staged);
    log.staged.clear();

    if (replayer_.joinable()) {
        {
            std::lock_guard<std::mutex> guard(queueMutex_);
            queue_.push_back(std::move(segment));
        }
        queueCv_.notify_one();
    } else {
        std::lock_guard<std::mutex> guard(queueMutex_);
        queue_.push_back(std::move(segment));
    }
}

void
SphtTx::applySegment(const Segment &segment)
{
    for (const auto &entry : segment.entries) {
        dev_.store(entry.off, entry.value.data(), entry.size);
        dev_.clwbRange(entry.off, entry.size, pmem::TrafficClass::Data);
    }
    dev_.sfence();
    logs_[segment.tid]->appliedBytes.store(segment.endBytes);
    SphtMetrics::get().replayedSegments.add();
}

void
SphtTx::replayerMain()
{
    for (;;) {
        Segment segment;
        {
            std::unique_lock<std::mutex> lock(queueMutex_);
            queueCv_.wait(lock, [&] { return stop_ || !queue_.empty(); });
            if (queue_.empty()) {
                if (stop_)
                    return;
                continue;
            }
            segment = std::move(queue_.front());
            queue_.pop_front();
        }
        applySegment(segment);
        spaceCv_.notify_all();
    }
}

void
SphtTx::drainReplayer()
{
    for (;;) {
        Segment segment;
        {
            std::lock_guard<std::mutex> guard(queueMutex_);
            if (queue_.empty())
                return;
            segment = std::move(queue_.front());
            queue_.pop_front();
        }
        applySegment(segment);
        spaceCv_.notify_all();
    }
}

void
SphtTx::shutdown()
{
    if (replayer_.joinable()) {
        // Wait for the queue to drain, then stop the thread.
        for (;;) {
            {
                std::lock_guard<std::mutex> guard(queueMutex_);
                if (queue_.empty())
                    break;
            }
            std::this_thread::yield();
        }
        {
            std::lock_guard<std::mutex> guard(queueMutex_);
            stop_ = true;
        }
        queueCv_.notify_all();
        replayer_.join();
    } else {
        drainReplayer();
    }
    dev_.drainAll();
}

void
SphtTx::recover()
{
    SPECPMT_TRACE_SPAN("spht_recover", "recovery");
    SphtMetrics::get().recoveries.add();
    flight_.record(forensic::EventType::RecoveryBegin, 0);
    struct PendingRecord
    {
        TxTimestamp ts;
        unsigned tid;
        std::vector<Entry> entries;
    };
    std::vector<PendingRecord> records;

    for (unsigned tid = 0; tid < numThreads_; ++tid) {
        auto &log = *logs_[tid];
        log.headerOff = pool_.getRoot(logHeadSlot(tid));
        if (log.headerOff == kPmNull)
            continue;
        log.recordsOff = log.headerOff + kCacheLineSize;
        log.generation = dev_.loadT<std::uint64_t>(log.headerOff);

        std::uint64_t cursor = 0;
        while (cursor + sizeof(RecHead) <= kLogCapacity) {
            const PmOff pos = log.recordsOff + cursor;
            const auto head = dev_.loadT<RecHead>(pos);
            if (head.sizeBytes < sizeof(RecHead) ||
                cursor + head.sizeBytes > kLogCapacity) {
                break;
            }
            // Re-parse the entries and validate the checksum.
            std::uint32_t crc = seedCrc(log.generation, tid, cursor);
            crc = crc32c(&head.timestamp, sizeof(head.timestamp), crc);
            std::vector<Entry> entries;
            PmOff entry_pos = pos + sizeof(RecHead);
            const PmOff end = pos + head.sizeBytes;
            bool ok = true;
            while (entry_pos + sizeof(EntryHead) <= end) {
                const auto ehead = dev_.loadT<EntryHead>(entry_pos);
                if (ehead.size == 0 ||
                    entry_pos + sizeof(EntryHead) +
                            paddedPayload(ehead.size) > end) {
                    ok = false;
                    break;
                }
                Entry entry;
                entry.off = ehead.off;
                entry.size = ehead.size;
                entry.value.resize(ehead.size);
                dev_.load(entry_pos + sizeof(EntryHead),
                          entry.value.data(), ehead.size);
                crc = crc32c(&ehead, sizeof(ehead), crc);
                crc = crc32c(entry.value.data(), ehead.size, crc);
                entries.push_back(std::move(entry));
                entry_pos += sizeof(EntryHead) + paddedPayload(ehead.size);
            }
            if (!ok || crc != head.crc)
                break; // torn or stale tail: no fresh records beyond
            seedTimestamp(head.timestamp);
            records.push_back({head.timestamp, tid, std::move(entries)});
            cursor += head.sizeBytes;
        }
        log.tailBytes = 0;
        log.appliedBytes.store(0);
        log.inTx = false;
        log.staged.clear();
    }

    // Apply and *persist* every committed record before retiring the
    // logs: bumping the generation first would invalidate the only
    // durable copy of unreplayed committed data, so a crash between
    // the two steps would lose transactions.
    std::sort(records.begin(), records.end(),
              [](const PendingRecord &a, const PendingRecord &b) {
                  return a.ts < b.ts;
              });
    for (const auto &record : records) {
        for (const auto &entry : record.entries) {
            dev_.store(entry.off, entry.value.data(), entry.size);
            dev_.clwbRange(entry.off, entry.size,
                           pmem::TrafficClass::Data);
        }
    }
    dev_.sfence();

    // Now retire the surviving logs under fresh generations.
    for (unsigned tid = 0; tid < numThreads_; ++tid) {
        auto &log = *logs_[tid];
        if (log.headerOff == kPmNull)
            continue;
        ++log.generation;
        dev_.storeT<std::uint64_t>(log.headerOff, log.generation);
        dev_.clwb(log.headerOff, pmem::TrafficClass::Log);
    }
    flight_.record(forensic::EventType::RecoveryEnd, 0, 0,
                   records.size());
    dev_.sfence();

    mirror_.assign(dev_.raw(), dev_.raw() + dev_.size());
}

} // namespace specpmt::txn
