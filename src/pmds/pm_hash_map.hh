/**
 * @file
 * A crash-consistent open-addressing hash map over the TxRuntime API.
 *
 * Keys and values are trivially copyable; each mutation is one
 * transaction (or joins the caller's open transaction via the *InTx
 * variants), so multi-word bucket updates are crash-atomic under any
 * recoverable runtime in this repository. Capacity is fixed at
 * creation; the map header lives in persistent memory so a re-opened
 * pool can attach() by base offset.
 */

#ifndef SPECPMT_PMDS_PM_HASH_MAP_HH
#define SPECPMT_PMDS_PM_HASH_MAP_HH

#include <optional>
#include <type_traits>

#include "common/hash.hh"
#include "common/logging.hh"
#include "txn/tx_runtime.hh"

namespace specpmt::pmds
{

/** Fixed-capacity persistent hash map; see file comment. */
template <typename Key, typename Value>
class PmHashMap
{
    static_assert(std::is_trivially_copyable_v<Key>);
    static_assert(std::is_trivially_copyable_v<Value>);

  public:
    /** Persistent header at the map's base offset. */
    struct Header
    {
        std::uint64_t magic;
        std::uint64_t buckets;
        std::uint64_t pad[2];
    };

    struct Bucket
    {
        std::uint8_t state; ///< 0 empty, 1 live, 2 tombstone
        std::uint8_t pad[7];
        Key key;
        Value value;
    };

    static constexpr std::uint64_t kMagic = 0x504D4D4150ull; // "PMMAP"

    /**
     * Allocate and initialize a map with @p buckets slots (a power of
     * two) through committed transactions of @p rt.
     */
    static PmHashMap
    create(txn::TxRuntime &rt, std::uint64_t buckets)
    {
        SPECPMT_ASSERT((buckets & (buckets - 1)) == 0);
        auto &pool = rt.pool();
        const PmOff base = pool.alloc(sizeof(Header) +
                                      buckets * sizeof(Bucket));
        rt.txBegin(0);
        rt.txStoreT<Header>(0, base, {kMagic, buckets, {0, 0}});
        rt.txCommit(0);

        PmHashMap map(rt, base, buckets);
        Bucket empty{};
        empty.state = 0;
        constexpr std::uint64_t kBatch = 128;
        for (std::uint64_t start = 0; start < buckets;
             start += kBatch) {
            rt.txBegin(0);
            for (std::uint64_t i = start;
                 i < std::min(start + kBatch, buckets); ++i) {
                rt.txStoreT<Bucket>(0, map.bucketOff(i), empty);
            }
            rt.txCommit(0);
        }
        return map;
    }

    /** Attach to an existing map at @p base (e.g. after recovery). */
    static PmHashMap
    attach(txn::TxRuntime &rt, PmOff base)
    {
        const auto header = rt.txLoadT<Header>(0, base);
        SPECPMT_ASSERT(header.magic == kMagic);
        return PmHashMap(rt, base, header.buckets);
    }

    /** The base offset (publish it via a pool root). */
    PmOff base() const { return base_; }

    /**
     * Insert or update inside its own transaction on thread @p tid
     * (concurrent callers must de-conflict with their own locking, as
     * everywhere else on the TxRuntime API).
     */
    bool
    put(ThreadId tid, const Key &key, const Value &value)
    {
        rt_->txBegin(tid);
        const bool ok = putInTx(tid, key, value);
        rt_->txCommit(tid);
        return ok;
    }

    /** Single-threaded convenience overload (thread 0). */
    bool put(const Key &key, const Value &value)
    {
        return put(0, key, value);
    }

    /** Insert or update inside the caller's open transaction. */
    bool
    putInTx(ThreadId tid, const Key &key, const Value &value)
    {
        const auto slot = findSlot(tid, key, true);
        if (!slot)
            return false;
        Bucket bucket;
        bucket.state = 1;
        bucket.key = key;
        bucket.value = value;
        rt_->txStoreT<Bucket>(tid, bucketOff(*slot), bucket);
        return true;
    }

    /** Single-threaded convenience overload (thread 0). */
    bool putInTx(const Key &key, const Value &value)
    {
        return putInTx(0, key, value);
    }

    /** Point lookup (usable inside or outside a transaction). */
    std::optional<Value>
    get(ThreadId tid, const Key &key)
    {
        const auto slot = findSlot(tid, key, false);
        if (!slot)
            return std::nullopt;
        const auto bucket = rt_->txLoadT<Bucket>(tid,
                                                 bucketOff(*slot));
        if (bucket.state == 1 && bucket.key == key)
            return bucket.value;
        return std::nullopt;
    }

    /** Single-threaded convenience overload (thread 0). */
    std::optional<Value> get(const Key &key) { return get(0, key); }

    /** Remove inside its own transaction; true if it was present. */
    bool
    erase(ThreadId tid, const Key &key)
    {
        rt_->txBegin(tid);
        const bool erased = eraseInTx(tid, key);
        rt_->txCommit(tid);
        return erased;
    }

    /** Single-threaded convenience overload (thread 0). */
    bool erase(const Key &key) { return erase(0, key); }

    /** Remove inside the caller's open transaction. */
    bool
    eraseInTx(ThreadId tid, const Key &key)
    {
        const auto slot = findSlot(tid, key, false);
        if (!slot)
            return false;
        auto bucket = rt_->txLoadT<Bucket>(tid, bucketOff(*slot));
        if (bucket.state != 1 || !(bucket.key == key))
            return false;
        bucket.state = 2;
        rt_->txStoreT<Bucket>(tid, bucketOff(*slot), bucket);
        return true;
    }

    /** Single-threaded convenience overload (thread 0). */
    bool eraseInTx(const Key &key) { return eraseInTx(0, key); }

    /** Visit every live (key, value) pair. */
    template <typename Fn>
    void
    forEach(Fn &&fn)
    {
        for (std::uint64_t i = 0; i < buckets_; ++i) {
            const auto bucket = rt_->txLoadT<Bucket>(0, bucketOff(i));
            if (bucket.state == 1)
                fn(bucket.key, bucket.value);
        }
    }

    /** Number of live entries (linear scan). */
    std::uint64_t
    size()
    {
        std::uint64_t count = 0;
        forEach([&](const Key &, const Value &) { ++count; });
        return count;
    }

  private:
    PmHashMap(txn::TxRuntime &rt, PmOff base, std::uint64_t buckets)
        : rt_(&rt), base_(base), buckets_(buckets)
    {}

    PmOff
    bucketOff(std::uint64_t index) const
    {
        return base_ + sizeof(Header) + index * sizeof(Bucket);
    }

    std::optional<std::uint64_t>
    findSlot(ThreadId tid, const Key &key, bool for_insert)
    {
        std::uint64_t index = mix64(hashKey(key)) & (buckets_ - 1);
        std::optional<std::uint64_t> first_free;
        for (std::uint64_t probe = 0; probe < buckets_; ++probe) {
            const auto bucket = rt_->txLoadT<Bucket>(tid,
                                                     bucketOff(index));
            if (bucket.state == 1 && bucket.key == key)
                return index;
            if (bucket.state == 2 && !first_free)
                first_free = index;
            if (bucket.state == 0) {
                return for_insert
                    ? (first_free ? first_free : std::optional(index))
                    : std::nullopt;
            }
            index = (index + 1) & (buckets_ - 1);
        }
        return for_insert ? first_free : std::nullopt;
    }

    static std::uint64_t
    hashKey(const Key &key)
    {
        // Byte-wise hash of the trivially copyable key.
        const auto *bytes = reinterpret_cast<const unsigned char *>(
            &key);
        std::uint64_t hash = 0;
        for (std::size_t i = 0; i < sizeof(Key); ++i)
            hash = hashCombine(hash, bytes[i]);
        return hash;
    }

    txn::TxRuntime *rt_;
    PmOff base_;
    std::uint64_t buckets_;
};

} // namespace specpmt::pmds

#endif // SPECPMT_PMDS_PM_HASH_MAP_HH
