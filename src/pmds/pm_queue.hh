/**
 * @file
 * A crash-consistent bounded FIFO queue (ring buffer) over the
 * TxRuntime API. Enqueue writes the slot and bumps the tail in one
 * transaction; dequeue reads the slot and bumps the head in one
 * transaction — so after a crash an element was either fully enqueued
 * (dequeued) or not at all, and no element is ever duplicated or
 * lost.
 */

#ifndef SPECPMT_PMDS_PM_QUEUE_HH
#define SPECPMT_PMDS_PM_QUEUE_HH

#include <optional>
#include <type_traits>

#include "common/logging.hh"
#include "txn/tx_runtime.hh"

namespace specpmt::pmds
{

/** Fixed-capacity persistent FIFO; see file comment. */
template <typename T>
class PmQueue
{
    static_assert(std::is_trivially_copyable_v<T>);

  public:
    struct Header
    {
        std::uint64_t magic;
        std::uint64_t capacity;
        std::uint64_t head; ///< next slot to dequeue
        std::uint64_t tail; ///< next slot to enqueue
    };

    static constexpr std::uint64_t kMagic = 0x504D51ull; // "PMQ"

    /** Allocate an empty queue with room for @p capacity elements. */
    static PmQueue
    create(txn::TxRuntime &rt, std::uint64_t capacity)
    {
        auto &pool = rt.pool();
        const PmOff base =
            pool.alloc(sizeof(Header) + capacity * sizeof(T));
        rt.txBegin(0);
        rt.txStoreT<Header>(0, base, {kMagic, capacity, 0, 0});
        rt.txCommit(0);
        return PmQueue(rt, base, capacity);
    }

    /** Attach to an existing queue at @p base. */
    static PmQueue
    attach(txn::TxRuntime &rt, PmOff base)
    {
        const auto header = rt.txLoadT<Header>(0, base);
        SPECPMT_ASSERT(header.magic == kMagic);
        return PmQueue(rt, base, header.capacity);
    }

    PmOff base() const { return base_; }

    std::uint64_t
    size()
    {
        const auto header = rt_->txLoadT<Header>(0, base_);
        return header.tail - header.head;
    }

    bool empty() { return size() == 0; }

    /** Enqueue atomically; false when full. */
    bool
    enqueue(const T &value)
    {
        rt_->txBegin(0);
        const auto header = rt_->txLoadT<Header>(0, base_);
        bool ok = false;
        if (header.tail - header.head < capacity_) {
            rt_->txStoreT<T>(0, slotOff(header.tail % capacity_),
                             value);
            rt_->txStoreT<std::uint64_t>(
                0, base_ + offsetof(Header, tail), header.tail + 1);
            ok = true;
        }
        rt_->txCommit(0);
        return ok;
    }

    /** Dequeue atomically; nullopt when empty. */
    std::optional<T>
    dequeue()
    {
        rt_->txBegin(0);
        const auto header = rt_->txLoadT<Header>(0, base_);
        std::optional<T> value;
        if (header.tail != header.head) {
            value = rt_->txLoadT<T>(0, slotOff(header.head % capacity_));
            rt_->txStoreT<std::uint64_t>(
                0, base_ + offsetof(Header, head), header.head + 1);
        }
        rt_->txCommit(0);
        return value;
    }

    /** Visit every pending element, oldest first, without consuming. */
    template <typename Fn>
    void
    forEach(Fn &&fn)
    {
        const auto header = rt_->txLoadT<Header>(0, base_);
        for (std::uint64_t i = header.head; i != header.tail; ++i)
            fn(rt_->txLoadT<T>(0, slotOff(i % capacity_)));
    }

    /** Peek without consuming. */
    std::optional<T>
    front()
    {
        const auto header = rt_->txLoadT<Header>(0, base_);
        if (header.tail == header.head)
            return std::nullopt;
        return rt_->txLoadT<T>(0, slotOff(header.head % capacity_));
    }

  private:
    PmQueue(txn::TxRuntime &rt, PmOff base, std::uint64_t capacity)
        : rt_(&rt), base_(base), capacity_(capacity)
    {}

    PmOff
    slotOff(std::uint64_t slot) const
    {
        return base_ + sizeof(Header) + slot * sizeof(T);
    }

    txn::TxRuntime *rt_;
    PmOff base_;
    std::uint64_t capacity_;
};

} // namespace specpmt::pmds

#endif // SPECPMT_PMDS_PM_QUEUE_HH
