/**
 * @file
 * A crash-consistent bounded vector over the TxRuntime API.
 *
 * The element write and the size bump happen in one transaction, so a
 * push is atomic: after a crash the vector either has the element and
 * the larger size, or neither. The capacity is fixed at creation.
 */

#ifndef SPECPMT_PMDS_PM_VECTOR_HH
#define SPECPMT_PMDS_PM_VECTOR_HH

#include <type_traits>

#include "common/logging.hh"
#include "txn/tx_runtime.hh"

namespace specpmt::pmds
{

/** Fixed-capacity persistent vector; see file comment. */
template <typename T>
class PmVector
{
    static_assert(std::is_trivially_copyable_v<T>);

  public:
    struct Header
    {
        std::uint64_t magic;
        std::uint64_t capacity;
        std::uint64_t size;
        std::uint64_t pad;
    };

    static constexpr std::uint64_t kMagic = 0x504D564543ull; // "PMVEC"

    /** Allocate an empty vector with room for @p capacity elements. */
    static PmVector
    create(txn::TxRuntime &rt, std::uint64_t capacity)
    {
        auto &pool = rt.pool();
        const PmOff base =
            pool.alloc(sizeof(Header) + capacity * sizeof(T));
        rt.txBegin(0);
        rt.txStoreT<Header>(0, base, {kMagic, capacity, 0, 0});
        rt.txCommit(0);
        return PmVector(rt, base, capacity);
    }

    /** Attach to an existing vector at @p base. */
    static PmVector
    attach(txn::TxRuntime &rt, PmOff base)
    {
        const auto header = rt.txLoadT<Header>(0, base);
        SPECPMT_ASSERT(header.magic == kMagic);
        return PmVector(rt, base, header.capacity);
    }

    PmOff base() const { return base_; }

    std::uint64_t
    size()
    {
        return rt_->txLoadT<Header>(0, base_).size;
    }

    std::uint64_t capacity() const { return capacity_; }

    /** Append atomically; false when full. */
    bool
    pushBack(const T &value)
    {
        rt_->txBegin(0);
        const bool ok = pushBackInTx(value);
        rt_->txCommit(0);
        return ok;
    }

    /** Append inside the caller's open transaction. */
    bool
    pushBackInTx(const T &value)
    {
        const auto header = rt_->txLoadT<Header>(0, base_);
        if (header.size >= capacity_)
            return false;
        rt_->txStoreT<T>(0, elementOff(header.size), value);
        rt_->txStoreT<std::uint64_t>(
            0, base_ + offsetof(Header, size), header.size + 1);
        return true;
    }

    /** Remove the last element atomically; false when empty. */
    bool
    popBack()
    {
        rt_->txBegin(0);
        const auto header = rt_->txLoadT<Header>(0, base_);
        bool ok = false;
        if (header.size > 0) {
            rt_->txStoreT<std::uint64_t>(
                0, base_ + offsetof(Header, size), header.size - 1);
            ok = true;
        }
        rt_->txCommit(0);
        return ok;
    }

    /** Read element @p index (bounds-checked). */
    T
    at(std::uint64_t index)
    {
        SPECPMT_ASSERT(index < size());
        return rt_->txLoadT<T>(0, elementOff(index));
    }

    /** Overwrite element @p index atomically. */
    void
    set(std::uint64_t index, const T &value)
    {
        SPECPMT_ASSERT(index < size());
        rt_->txBegin(0);
        rt_->txStoreT<T>(0, elementOff(index), value);
        rt_->txCommit(0);
    }

  private:
    PmVector(txn::TxRuntime &rt, PmOff base, std::uint64_t capacity)
        : rt_(&rt), base_(base), capacity_(capacity)
    {}

    PmOff
    elementOff(std::uint64_t index) const
    {
        return base_ + sizeof(Header) + index * sizeof(T);
    }

    txn::TxRuntime *rt_;
    PmOff base_;
    std::uint64_t capacity_;
};

} // namespace specpmt::pmds

#endif // SPECPMT_PMDS_PM_VECTOR_HH
