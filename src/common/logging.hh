/**
 * @file
 * Error and status reporting, following the gem5 fatal/panic split.
 *
 * panic() flags an internal invariant violation (a bug in this library)
 * and aborts; fatal() flags an unrecoverable user/configuration error
 * and exits cleanly; warn()/inform() report conditions without stopping.
 */

#ifndef SPECPMT_COMMON_LOGGING_HH
#define SPECPMT_COMMON_LOGGING_HH

#include <cstdarg>
#include <string>

namespace specpmt
{

/** Print a formatted message and abort(); use for internal bugs. */
[[noreturn]] void panicImpl(const char *file, int line,
                            const char *fmt, ...)
    __attribute__((format(printf, 3, 4)));

/** Print a formatted message and exit(1); use for user errors. */
[[noreturn]] void fatalImpl(const char *file, int line,
                            const char *fmt, ...)
    __attribute__((format(printf, 3, 4)));

/** Print a formatted warning to stderr and continue. */
void warnImpl(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

/** Print a formatted status message to stderr and continue. */
void informImpl(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

} // namespace specpmt

#define SPECPMT_PANIC(...) \
    ::specpmt::panicImpl(__FILE__, __LINE__, __VA_ARGS__)
#define SPECPMT_FATAL(...) \
    ::specpmt::fatalImpl(__FILE__, __LINE__, __VA_ARGS__)
#define SPECPMT_WARN(...) ::specpmt::warnImpl(__VA_ARGS__)
#define SPECPMT_INFORM(...) ::specpmt::informImpl(__VA_ARGS__)

/**
 * Internal invariant check: active in all build types because crash
 * consistency bugs are exactly the kind of defect optimized builds hide.
 */
#define SPECPMT_ASSERT(cond, ...)                                       \
    do {                                                                \
        if (!(cond)) {                                                  \
            ::specpmt::panicImpl(__FILE__, __LINE__,                    \
                                 "assertion failed: %s", #cond);        \
        }                                                               \
    } while (0)

#endif // SPECPMT_COMMON_LOGGING_HH
