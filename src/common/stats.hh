/**
 * @file
 * Lightweight statistics helpers: named counters, a fixed-bucket
 * latency histogram for the serving-shaped benchmarks, and the
 * geometric mean / speedup arithmetic used by the benchmark harnesses
 * when reproducing the paper's figures.
 */

#ifndef SPECPMT_COMMON_STATS_HH
#define SPECPMT_COMMON_STATS_HH

#include <array>
#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace specpmt
{

/**
 * A named bag of monotonically increasing counters.
 *
 * SINGLE-THREADED ONLY: this is a bare std::map mutated through
 * operator[], with no synchronization. It exists as a convenience for
 * single-threaded tests and tools that want exact, isolated event
 * counts without registering global metric names. Anything touched by
 * more than one thread must use obs::Registry (src/obs/metrics.hh),
 * whose counters are sharded atomics and safe to record from any
 * thread.
 */
class CounterSet
{
  public:
    /** Add @p delta to counter @p name (creating it at zero). */
    void
    add(const std::string &name, std::uint64_t delta = 1)
    {
        counters_[name] += delta;
    }

    /** Read counter @p name; missing counters read as zero. */
    std::uint64_t
    get(const std::string &name) const
    {
        auto it = counters_.find(name);
        return it == counters_.end() ? 0 : it->second;
    }

    /** Reset every counter to zero. */
    void clear() { counters_.clear(); }

    /** Access to all counters, sorted by name. */
    const std::map<std::string, std::uint64_t> &all() const
    {
        return counters_;
    }

  private:
    std::map<std::string, std::uint64_t> counters_;
};

/**
 * A fixed-bucket log-linear histogram for latency samples.
 *
 * Buckets follow the HdrHistogram layout: values below kSubBuckets
 * get one exact bucket each; above that, every power-of-two octave is
 * split into kSubBuckets linear sub-buckets, bounding the relative
 * quantization error of any reported percentile by 1/kSubBuckets
 * (12.5%). record() is a single array increment with no allocation,
 * so worker threads keep thread-local histograms on the fast path and
 * merge() them afterwards.
 */
class LatencyHistogram
{
  public:
    /** Sub-buckets per power-of-two octave (a power of two). */
    static constexpr unsigned kSubBucketBits = 3;
    static constexpr unsigned kSubBuckets = 1u << kSubBucketBits;
    /** Total bucket count covering the full 64-bit value range. */
    static constexpr unsigned kBuckets =
        kSubBuckets + (64 - kSubBucketBits) * kSubBuckets;

    /** Index of the bucket holding @p value. */
    static unsigned bucketIndex(std::uint64_t value);

    /** Smallest value mapping to bucket @p index. */
    static std::uint64_t bucketLowerBound(unsigned index);

    /** Largest value mapping to bucket @p index. */
    static std::uint64_t bucketUpperBound(unsigned index);

    /** Record one sample. */
    void record(std::uint64_t value);

    /** Fold @p other 's samples into this histogram. */
    void merge(const LatencyHistogram &other);

    /** Number of recorded samples. */
    std::uint64_t count() const { return count_; }

    /** Sum of all recorded samples. */
    std::uint64_t sum() const { return sum_; }

    /** Largest recorded sample (0 when empty). */
    std::uint64_t max() const { return max_; }

    /** Arithmetic mean (0 when empty). */
    double mean() const;

    /**
     * Value at percentile @p p (in [0, 100]): the upper bound of the
     * bucket containing the rank-⌈p/100·count⌉ sample, clamped to the
     * recorded maximum. Returns 0 when empty.
     */
    std::uint64_t percentile(double p) const;

    /** Raw bucket counts (for tests and serialization). */
    const std::array<std::uint64_t, kBuckets> &buckets() const
    {
        return counts_;
    }

    /**
     * JSON object with count/sum/max and every non-empty bucket as a
     * [lowerBound, upperBound, count] triple. The bounds come from
     * bucketLowerBound/bucketUpperBound, so a consumer can recompute
     * any percentile offline with the same quantization the in-process
     * percentile() uses.
     */
    std::string toJson() const;

    /** Drop all samples. */
    void clear();

  private:
    std::array<std::uint64_t, kBuckets> counts_{};
    std::uint64_t count_ = 0;
    std::uint64_t sum_ = 0;
    std::uint64_t max_ = 0;
};

/** Geometric mean of a series of positive values. */
double geomean(const std::vector<double> &values);

/**
 * Format a speedup/overhead table row: a label column followed by one
 * fixed-width numeric cell per value, e.g. for the figure benches.
 */
std::string formatRow(const std::string &label,
                      const std::vector<double> &values,
                      int precision = 2, int width = 14);

} // namespace specpmt

#endif // SPECPMT_COMMON_STATS_HH
