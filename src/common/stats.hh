/**
 * @file
 * Lightweight statistics helpers: named counters, and the geometric
 * mean / speedup arithmetic used by the benchmark harnesses when
 * reproducing the paper's figures.
 */

#ifndef SPECPMT_COMMON_STATS_HH
#define SPECPMT_COMMON_STATS_HH

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace specpmt
{

/**
 * A named bag of monotonically increasing counters.
 *
 * Runtimes expose their persistence events (fences, PM line writes,
 * log bytes, ...) through one of these so tests and benches can make
 * assertions on exact event counts.
 */
class CounterSet
{
  public:
    /** Add @p delta to counter @p name (creating it at zero). */
    void
    add(const std::string &name, std::uint64_t delta = 1)
    {
        counters_[name] += delta;
    }

    /** Read counter @p name; missing counters read as zero. */
    std::uint64_t
    get(const std::string &name) const
    {
        auto it = counters_.find(name);
        return it == counters_.end() ? 0 : it->second;
    }

    /** Reset every counter to zero. */
    void clear() { counters_.clear(); }

    /** Access to all counters, sorted by name. */
    const std::map<std::string, std::uint64_t> &all() const
    {
        return counters_;
    }

  private:
    std::map<std::string, std::uint64_t> counters_;
};

/** Geometric mean of a series of positive values. */
double geomean(const std::vector<double> &values);

/**
 * Format a speedup/overhead table row: a label column followed by one
 * fixed-width numeric cell per value, e.g. for the figure benches.
 */
std::string formatRow(const std::string &label,
                      const std::vector<double> &values,
                      int precision = 2, int width = 14);

} // namespace specpmt

#endif // SPECPMT_COMMON_STATS_HH
