#include "common/stats.hh"

#include <algorithm>
#include <bit>
#include <cmath>
#include <cstdio>

#include "common/logging.hh"

namespace specpmt
{

unsigned
LatencyHistogram::bucketIndex(std::uint64_t value)
{
    if (value < kSubBuckets)
        return static_cast<unsigned>(value);
    // Octave = position of the highest set bit above the sub-bucket
    // resolution; the top kSubBucketBits+1 bits select the sub-bucket.
    const unsigned shift =
        std::bit_width(value) - 1 - kSubBucketBits;
    const unsigned sub =
        static_cast<unsigned>(value >> shift) - kSubBuckets;
    return kSubBuckets + shift * kSubBuckets + sub;
}

std::uint64_t
LatencyHistogram::bucketLowerBound(unsigned index)
{
    SPECPMT_ASSERT(index < kBuckets);
    if (index < kSubBuckets)
        return index;
    const unsigned shift = (index - kSubBuckets) / kSubBuckets;
    const unsigned sub = (index - kSubBuckets) % kSubBuckets;
    return static_cast<std::uint64_t>(kSubBuckets + sub) << shift;
}

std::uint64_t
LatencyHistogram::bucketUpperBound(unsigned index)
{
    SPECPMT_ASSERT(index < kBuckets);
    if (index < kSubBuckets)
        return index;
    const unsigned shift = (index - kSubBuckets) / kSubBuckets;
    return bucketLowerBound(index) +
           ((static_cast<std::uint64_t>(1) << shift) - 1);
}

void
LatencyHistogram::record(std::uint64_t value)
{
    ++counts_[bucketIndex(value)];
    ++count_;
    sum_ += value;
    max_ = std::max(max_, value);
}

void
LatencyHistogram::merge(const LatencyHistogram &other)
{
    for (unsigned i = 0; i < kBuckets; ++i)
        counts_[i] += other.counts_[i];
    count_ += other.count_;
    sum_ += other.sum_;
    max_ = std::max(max_, other.max_);
}

double
LatencyHistogram::mean() const
{
    return count_ == 0
        ? 0.0
        : static_cast<double>(sum_) / static_cast<double>(count_);
}

std::uint64_t
LatencyHistogram::percentile(double p) const
{
    if (count_ == 0)
        return 0;
    SPECPMT_ASSERT(p >= 0.0 && p <= 100.0);
    const auto rank = std::max<std::uint64_t>(
        1, static_cast<std::uint64_t>(
               std::ceil(p / 100.0 * static_cast<double>(count_))));
    std::uint64_t seen = 0;
    for (unsigned i = 0; i < kBuckets; ++i) {
        seen += counts_[i];
        if (seen >= rank)
            return std::min(bucketUpperBound(i), max_);
    }
    return max_;
}

std::string
LatencyHistogram::toJson() const
{
    std::string out = "{\"count\": " + std::to_string(count_) +
                      ", \"sum\": " + std::to_string(sum_) +
                      ", \"max\": " + std::to_string(max_) +
                      ", \"buckets\": [";
    bool first = true;
    for (unsigned i = 0; i < kBuckets; ++i) {
        if (counts_[i] == 0)
            continue;
        if (!first)
            out += ", ";
        first = false;
        out += "[" + std::to_string(bucketLowerBound(i)) + ", " +
               std::to_string(bucketUpperBound(i)) + ", " +
               std::to_string(counts_[i]) + "]";
    }
    out += "]}";
    return out;
}

void
LatencyHistogram::clear()
{
    counts_.fill(0);
    count_ = 0;
    sum_ = 0;
    max_ = 0;
}

double
geomean(const std::vector<double> &values)
{
    SPECPMT_ASSERT(!values.empty());
    double log_sum = 0.0;
    for (double v : values) {
        SPECPMT_ASSERT(v > 0.0);
        log_sum += std::log(v);
    }
    return std::exp(log_sum / static_cast<double>(values.size()));
}

std::string
formatRow(const std::string &label, const std::vector<double> &values,
          int precision, int width)
{
    std::string row = label;
    if (row.size() < 16)
        row.resize(16, ' ');
    char cell[64];
    for (double v : values) {
        std::snprintf(cell, sizeof(cell), "%*.*f", width, precision, v);
        row += cell;
    }
    return row;
}

} // namespace specpmt
