#include "common/stats.hh"

#include <cmath>
#include <cstdio>

#include "common/logging.hh"

namespace specpmt
{

double
geomean(const std::vector<double> &values)
{
    SPECPMT_ASSERT(!values.empty());
    double log_sum = 0.0;
    for (double v : values) {
        SPECPMT_ASSERT(v > 0.0);
        log_sum += std::log(v);
    }
    return std::exp(log_sum / static_cast<double>(values.size()));
}

std::string
formatRow(const std::string &label, const std::vector<double> &values,
          int precision, int width)
{
    std::string row = label;
    if (row.size() < 16)
        row.resize(16, ' ');
    char cell[64];
    for (double v : values) {
        std::snprintf(cell, sizeof(cell), "%*.*f", width, precision, v);
        row += cell;
    }
    return row;
}

} // namespace specpmt
