#include "common/crc32.hh"

#include <array>

namespace specpmt
{

namespace
{

/** Build the CRC32C (polynomial 0x1EDC6F41, reflected) lookup table. */
constexpr std::array<std::uint32_t, 256>
makeTable()
{
    std::array<std::uint32_t, 256> table{};
    for (std::uint32_t i = 0; i < 256; ++i) {
        std::uint32_t crc = i;
        for (int bit = 0; bit < 8; ++bit) {
            if (crc & 1u)
                crc = (crc >> 1) ^ 0x82F63B78u;
            else
                crc >>= 1;
        }
        table[i] = crc;
    }
    return table;
}

constexpr auto kTable = makeTable();

} // namespace

std::uint32_t
crc32c(const void *data, std::size_t size, std::uint32_t seed)
{
    const auto *bytes = static_cast<const std::uint8_t *>(data);
    std::uint32_t crc = ~seed;
    for (std::size_t i = 0; i < size; ++i)
        crc = kTable[(crc ^ bytes[i]) & 0xFFu] ^ (crc >> 8);
    return ~crc;
}

} // namespace specpmt
