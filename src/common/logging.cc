#include "common/logging.hh"

#include <cstdio>
#include <cstdlib>
#include <cstring>

namespace specpmt
{

namespace
{

/**
 * Severity order for SPECPMT_LOG_LEVEL filtering. panic/fatal always
 * print — suppressing the message that explains an abort() would be
 * hostile — so the env var only gates warn and inform.
 */
enum class Level
{
    Always = 0, // panic/fatal: never suppressed (alias of Silent)
    Silent = 0, // SPECPMT_LOG_LEVEL=silent suppresses warn + inform
    Warn = 1,   // SPECPMT_LOG_LEVEL=warn suppresses inform
    Inform = 2, // print everything (default)
};

Level
configuredLevel()
{
    static const Level level = [] {
        const char *env = std::getenv("SPECPMT_LOG_LEVEL");
        if (env == nullptr || *env == '\0')
            return Level::Inform;
        if (std::strcmp(env, "silent") == 0 ||
            std::strcmp(env, "none") == 0)
            return Level::Silent;
        if (std::strcmp(env, "warn") == 0)
            return Level::Warn;
        if (std::strcmp(env, "inform") == 0 ||
            std::strcmp(env, "info") == 0)
            return Level::Inform;
        // The lambda runs once, so a bad value warns once per process
        // no matter how many reports follow.
        std::fprintf(stderr,
                     "warn: SPECPMT_LOG_LEVEL=%s not recognized "
                     "(accepted: silent, none, warn, inform, info); "
                     "logging everything\n",
                     env);
        return Level::Inform;
    }();
    return level;
}

/**
 * The single sink every report funnels through. @p location is the
 * "file:line: " prefix for panic/fatal, or nullptr.
 */
void
vreport(Level level, const char *tag, const char *location, int line,
        const char *fmt, va_list ap)
{
    if (level != Level::Always && configuredLevel() < level)
        return;
    if (location != nullptr)
        std::fprintf(stderr, "%s: %s:%d: ", tag, location, line);
    else
        std::fprintf(stderr, "%s: ", tag);
    std::vfprintf(stderr, fmt, ap);
    std::fputc('\n', stderr);
    std::fflush(stderr);
}

} // namespace

void
panicImpl(const char *file, int line, const char *fmt, ...)
{
    va_list ap;
    va_start(ap, fmt);
    vreport(Level::Always, "panic", file, line, fmt, ap);
    va_end(ap);
    std::abort();
}

void
fatalImpl(const char *file, int line, const char *fmt, ...)
{
    va_list ap;
    va_start(ap, fmt);
    vreport(Level::Always, "fatal", file, line, fmt, ap);
    va_end(ap);
    std::exit(1);
}

void
warnImpl(const char *fmt, ...)
{
    va_list ap;
    va_start(ap, fmt);
    vreport(Level::Warn, "warn", nullptr, 0, fmt, ap);
    va_end(ap);
}

void
informImpl(const char *fmt, ...)
{
    va_list ap;
    va_start(ap, fmt);
    vreport(Level::Inform, "info", nullptr, 0, fmt, ap);
    va_end(ap);
}

} // namespace specpmt
