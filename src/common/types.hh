/**
 * @file
 * Fundamental type aliases shared across the SpecPMT code base.
 */

#ifndef SPECPMT_COMMON_TYPES_HH
#define SPECPMT_COMMON_TYPES_HH

#include <cstddef>
#include <cstdint>

namespace specpmt
{

/**
 * A byte offset into a persistent memory pool.
 *
 * All persistent data structures address each other with pool-relative
 * offsets rather than raw pointers so that a pool image remains valid
 * across process restarts (and, in our emulation, across simulated
 * crashes). Offset 0 is reserved as the null value.
 */
using PmOff = std::uint64_t;

/** The reserved null persistent offset. */
constexpr PmOff kPmNull = 0;

/** Simulated time in nanoseconds. */
using SimNs = std::uint64_t;

/** Simulated time in CPU cycles. */
using SimCycles = std::uint64_t;

/** Monotonic transaction timestamp (from a simulated rdtscp). */
using TxTimestamp = std::uint64_t;

/** Identifier of a worker thread inside a transaction runtime. */
using ThreadId = std::uint32_t;

/** Identifier of a log reclamation epoch (hardware SpecPMT). */
using EpochId = std::uint32_t;

/** Cache line geometry used throughout the emulation. */
constexpr std::size_t kCacheLineSize = 64;

/** Page geometry used by the hardware TLB model. */
constexpr std::size_t kPageSize = 4096;

/** Intel Optane internal write-combining granularity (an "XPLine"). */
constexpr std::size_t kXpLineSize = 256;

/** Round an offset down to its cache line base. */
constexpr PmOff
lineBase(PmOff off)
{
    return off & ~static_cast<PmOff>(kCacheLineSize - 1);
}

/** Index of the cache line containing @p off. */
constexpr std::uint64_t
lineIndex(PmOff off)
{
    return off / kCacheLineSize;
}

/** Round an offset down to its page base. */
constexpr PmOff
pageBase(PmOff off)
{
    return off & ~static_cast<PmOff>(kPageSize - 1);
}

/** Index of the page containing @p off. */
constexpr std::uint64_t
pageIndex(PmOff off)
{
    return off / kPageSize;
}

/** Number of cache lines covering [off, off + size). */
constexpr std::uint64_t
lineSpan(PmOff off, std::size_t size)
{
    if (size == 0)
        return 0;
    return lineIndex(off + size - 1) - lineIndex(off) + 1;
}

} // namespace specpmt

#endif // SPECPMT_COMMON_TYPES_HH
