/**
 * @file
 * Integer mixing hashes used by the volatile record indexes of the log
 * reclaimer and by the persistent hash map workload structure.
 */

#ifndef SPECPMT_COMMON_HASH_HH
#define SPECPMT_COMMON_HASH_HH

#include <cstdint>

namespace specpmt
{

/** Finalizer from SplitMix64; a strong 64-to-64 bit mixer. */
constexpr std::uint64_t
mix64(std::uint64_t x)
{
    x += 0x9E3779B97F4A7C15ull;
    x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ull;
    x = (x ^ (x >> 27)) * 0x94D049BB133111EBull;
    return x ^ (x >> 31);
}

/** Combine two hash values (boost::hash_combine style, 64-bit). */
constexpr std::uint64_t
hashCombine(std::uint64_t a, std::uint64_t b)
{
    return a ^ (mix64(b) + 0x9E3779B97F4A7C15ull + (a << 12) + (a >> 4));
}

} // namespace specpmt

#endif // SPECPMT_COMMON_HASH_HH
