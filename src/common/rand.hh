/**
 * @file
 * Small deterministic PRNGs. Workloads and crash-injection tests need
 * reproducible randomness that is stable across platforms, so we avoid
 * std::mt19937's weight and libc rand()'s nondeterminism.
 */

#ifndef SPECPMT_COMMON_RAND_HH
#define SPECPMT_COMMON_RAND_HH

#include <cstdint>

#include "common/hash.hh"

namespace specpmt
{

/**
 * SplitMix64-seeded xoshiro256** generator.
 *
 * Deterministic for a given seed on all platforms; passes BigCrush.
 */
class Rng
{
  public:
    /** Construct from a 64-bit seed (expanded via SplitMix64). */
    explicit Rng(std::uint64_t seed = 0x5EC9417ull)
    {
        std::uint64_t sm = seed;
        for (auto &word : state_) {
            sm += 0x9E3779B97F4A7C15ull;
            word = mix64(sm);
        }
    }

    /** Next raw 64-bit value. */
    std::uint64_t
    next()
    {
        const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
        const std::uint64_t t = state_[1] << 17;
        state_[2] ^= state_[0];
        state_[3] ^= state_[1];
        state_[1] ^= state_[2];
        state_[0] ^= state_[3];
        state_[2] ^= t;
        state_[3] = rotl(state_[3], 45);
        return result;
    }

    /** Uniform integer in [0, bound); bound must be nonzero. */
    std::uint64_t
    below(std::uint64_t bound)
    {
        // Lemire's multiply-shift rejection-free approximation is fine
        // for workload generation purposes.
        return static_cast<std::uint64_t>(
            (static_cast<unsigned __int128>(next()) * bound) >> 64);
    }

    /** Uniform integer in [lo, hi] inclusive. */
    std::uint64_t
    range(std::uint64_t lo, std::uint64_t hi)
    {
        return lo + below(hi - lo + 1);
    }

    /** Uniform double in [0, 1). */
    double
    uniform()
    {
        return static_cast<double>(next() >> 11) * 0x1.0p-53;
    }

    /** Bernoulli trial with probability @p p. */
    bool chance(double p) { return uniform() < p; }

  private:
    static std::uint64_t
    rotl(std::uint64_t x, int k)
    {
        return (x << k) | (x >> (64 - k));
    }

    std::uint64_t state_[4];
};

} // namespace specpmt

#endif // SPECPMT_COMMON_RAND_HH
