/**
 * @file
 * Software CRC32C (Castagnoli), used as the speculative log record
 * checksum. The checksum doubles as the transaction commit flag in
 * software SpecPMT (Section 4.1 of the paper), so it must detect torn
 * (partially persisted) records with high probability.
 */

#ifndef SPECPMT_COMMON_CRC32_HH
#define SPECPMT_COMMON_CRC32_HH

#include <cstddef>
#include <cstdint>

namespace specpmt
{

/**
 * Compute CRC32C over a byte buffer.
 *
 * @param data  The buffer to checksum.
 * @param size  Number of bytes.
 * @param seed  Initial CRC state for incremental use (default fresh).
 * @return The CRC32C value.
 */
std::uint32_t crc32c(const void *data, std::size_t size,
                     std::uint32_t seed = 0);

} // namespace specpmt

#endif // SPECPMT_COMMON_CRC32_HH
