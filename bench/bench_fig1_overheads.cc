/**
 * @file
 * Figure 1: residual crash-consistency overheads of the
 * state-of-the-art schemes relative to versions without persistent
 * memory transactions.
 *
 * Top panel (software, emulated ADR machine): PMDK, Kamino-Tx and
 * SPHT execution-time overhead over the no-transaction baseline.
 * Bottom panel (hardware, trace-driven simulator): EDE and HOOP
 * overhead over the no-log ideal.
 *
 * Paper reference points: PMDK 460%, Kamino-Tx 232%, SPHT 161%
 * geomean (software); EDE 50%, HOOP ~29% (hardware).
 */

#include <cstdio>

#include "bench/bench_util.hh"
#include "common/stats.hh"

using namespace specpmt;
using namespace specpmt::bench;

int
main(int argc, char **argv)
{
    const ObsSession obs_session(argc, argv);
    const double scale = parseScale(argc, argv);

    printHeader("Figure 1 (software): overhead over no-tx, percent",
                {"PMDK", "Kamino-Tx", "SPHT"});
    std::vector<double> pmdk_over, kamino_over, spht_over;
    for (const auto kind : workloads::allWorkloads()) {
        workloads::WorkloadConfig config;
        config.scale = scale;
        const auto base = runSoftware(SwScheme::Direct, kind, config);
        const auto pmdk = runSoftware(SwScheme::Pmdk, kind, config);
        const auto kamino =
            runSoftware(SwScheme::KaminoTx, kind, config);
        const auto spht = runSoftware(SwScheme::Spht, kind, config);

        const auto overhead = [&](const SwResult &result) {
            return 100.0 *
                   (static_cast<double>(result.ns) /
                        static_cast<double>(base.ns) -
                    1.0);
        };
        pmdk_over.push_back(overhead(pmdk));
        kamino_over.push_back(overhead(kamino));
        spht_over.push_back(overhead(spht));
        printRow(workloads::workloadKindName(kind),
                 {pmdk_over.back(), kamino_over.back(),
                  spht_over.back()},
                 1);
    }
    // Geomean over (1 + overhead) ratios, reported back as percent.
    const auto geo_pct = [](std::vector<double> overs) {
        for (auto &value : overs)
            value = 1.0 + value / 100.0;
        return 100.0 * (geomean(overs) - 1.0);
    };
    printRow("geomean",
             {geo_pct(pmdk_over), geo_pct(kamino_over),
              geo_pct(spht_over)},
             1);
    std::printf("paper geomean:  PMDK 460%%  Kamino-Tx 232%%  "
                "SPHT 161%%\n");

    printHeader("Figure 1 (hardware): overhead over no-log, percent",
                {"EDE", "HOOP"});
    std::vector<double> ede_over, hoop_over;
    for (const auto kind : workloads::allWorkloads()) {
        workloads::WorkloadConfig config;
        config.scale = scale;
        const auto trace = recordTrace(kind, config);
        sim::SimConfig sim_config;
        const auto ideal =
            sim::simulate(sim::HwScheme::NoLog, sim_config, trace);
        const auto ede =
            sim::simulate(sim::HwScheme::Ede, sim_config, trace);
        const auto hoop =
            sim::simulate(sim::HwScheme::Hoop, sim_config, trace);

        const auto overhead = [&](const sim::HwStats &stats) {
            return 100.0 * (static_cast<double>(stats.ns) /
                                static_cast<double>(ideal.ns) -
                            1.0);
        };
        ede_over.push_back(overhead(ede));
        hoop_over.push_back(overhead(hoop));
        printRow(workloads::workloadKindName(kind),
                 {ede_over.back(), hoop_over.back()}, 1);
    }
    printRow("geomean", {geo_pct(ede_over), geo_pct(hoop_over)}, 1);
    std::printf("paper geomean:  EDE 50%%  HOOP ~26%%\n");
    return 0;
}
