/**
 * @file
 * Figure 15: SpecHPMT sensitivity to log memory consumption. The
 * epoch budget is swept; smaller epochs reclaim log records sooner
 * (less memory, but pages get re-logged and data gets flushed more
 * often), larger epochs spend memory for speed.
 *
 * Paper reference: ~2.6% extra memory -> 1.12x over EDE; ~15% ->
 * 1.36x; ~20% -> 1.4x; write-traffic reduction grows alongside.
 */

#include <algorithm>
#include <cstdio>

#include "bench/bench_util.hh"
#include "common/stats.hh"

using namespace specpmt;
using namespace specpmt::bench;

int
main(int argc, char **argv)
{
    const ObsSession obs_session(argc, argv);
    const double scale = parseScale(argc, argv);

    // Record all traces and EDE baselines once.
    std::vector<txn::MemTrace> traces;
    std::vector<sim::HwStats> ede_stats;
    sim::SimConfig base_config;
    for (const auto kind : workloads::allWorkloads()) {
        workloads::WorkloadConfig config;
        config.scale = scale;
        traces.push_back(recordTrace(kind, config));
        ede_stats.push_back(sim::simulate(sim::HwScheme::Ede,
                                          base_config, traces.back()));
    }

    std::printf("\n== Figure 15: speedup & traffic vs log memory ==\n");
    std::printf("%16s%16s%16s%16s%16s\n", "epoch budget",
                "avg mem (%)", "peak log KB", "geo speedup",
                "traffic red(%)");

    const std::size_t budgets[] = {16u << 10, 64u << 10, 256u << 10,
                                   1u << 20,  2u << 20,  8u << 20};
    for (const std::size_t budget : budgets) {
        sim::SimConfig sim_config;
        sim_config.epochMaxBytes = budget;
        sim_config.epochMaxPages = static_cast<unsigned>(
            std::max<std::size_t>(8, budget / (4 * kPageSize)));

        std::vector<double> speedups;
        std::vector<double> reductions;
        std::vector<double> mem_ratios;
        std::size_t peak_log = 0;
        for (std::size_t i = 0; i < traces.size(); ++i) {
            const auto stats = sim::simulate(sim::HwScheme::SpecHpmt,
                                             sim_config, traces[i]);
            speedups.push_back(static_cast<double>(ede_stats[i].ns) /
                               static_cast<double>(stats.ns));
            reductions.push_back(
                100.0 *
                (1.0 - static_cast<double>(stats.pmLineWrites()) /
                           static_cast<double>(
                               ede_stats[i].pmLineWrites())));
            mem_ratios.push_back(
                100.0 * static_cast<double>(stats.peakLogBytes) /
                static_cast<double>(traces[i].residentBytes));
            peak_log = std::max(peak_log, stats.peakLogBytes);
        }
        double mem_mean = 0, red_mean = 0;
        for (double value : mem_ratios)
            mem_mean += value;
        for (double value : reductions)
            red_mean += value;
        mem_mean /= static_cast<double>(mem_ratios.size());
        red_mean /= static_cast<double>(reductions.size());

        char label[32];
        std::snprintf(label, sizeof(label), "%zu KB", budget >> 10);
        std::printf("%16s%16.1f%16zu%16.2f%16.1f\n", label, mem_mean,
                    peak_log / 1024, geomean(speedups), red_mean);
    }
    std::printf("paper: 2.6%% mem -> 1.12x; 15%% -> 1.36x; "
                "20%% -> 1.40x over EDE\n");
    return 0;
}
