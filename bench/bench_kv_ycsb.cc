/**
 * @file
 * YCSB-style serving benchmark over the sharded KV service.
 *
 * Runs mixes A (50/50 read/update), B (95/5) and C (read-only) with
 * zipfian key popularity against each requested transaction runtime,
 * reporting wall and simulated-clock throughput, wall-clock latency
 * percentiles, and per-shard persistence traffic (fences, media line
 * writes). This is the serving-shaped analog of Figure 12: on the
 * write-heavy mixes the speculative runtime's fence elision shows up
 * directly as throughput.
 *
 * Usage:
 *   bench_kv_ycsb [--runtimes=spec,pmdk] [--mixes=A,B,C]
 *                 [--threads=4] [--shards=4] [--keys=8192]
 *                 [--ops=4000] [--dist=zipfian|uniform]
 *                 [--multiput=0.1] [--group-commit=N]
 *                 [--metrics-out=m.prom] [--trace-out=t.json]
 *
 * --group-commit=N issues updates with relaxed durability and seals
 * each shard's epoch every N relaxed mutations (0 = strict, the
 * default); only group-commit-capable runtimes ("spec", "spec-dp")
 * are affected.
 *
 * The final stdout line is a BENCH_kv.json-compatible JSON summary.
 * --metrics-out dumps the process-wide registry (Prometheus text, or
 * JSON when the path ends in .json); --trace-out enables the tracer
 * and dumps a Chrome trace-event file, appending a small
 * crash+recover+reclaim probe so every span category is witnessed.
 */

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "common/logging.hh"
#include "core/spec_tx.hh"
#include "kv/driver.hh"
#include "kv/kv_service.hh"
#include "obs/artifacts.hh"
#include "pmem/crash_policy.hh"

using namespace specpmt;

namespace
{

struct Args
{
    std::vector<std::string> runtimes = {"spec", "pmdk"};
    std::vector<std::string> mixes = {"A", "B", "C"};
    unsigned threads = 4;
    unsigned shards = 4;
    std::uint64_t keys = 8192;
    std::uint64_t opsPerThread = 4000;
    kv::KeyDist dist = kv::KeyDist::Zipfian;
    double multiPutFraction = 0.0;
    unsigned groupCommit = 0;
    obs::OutputFlags obs;
};

std::vector<std::string>
splitCsv(const std::string &arg)
{
    std::vector<std::string> out;
    std::size_t start = 0;
    while (start <= arg.size()) {
        const auto comma = arg.find(',', start);
        const auto end = comma == std::string::npos ? arg.size()
                                                    : comma;
        if (end > start)
            out.push_back(arg.substr(start, end - start));
        if (comma == std::string::npos)
            break;
        start = comma + 1;
    }
    return out;
}

Args
parseArgs(int argc, char **argv)
{
    Args args;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        auto value = [&](const char *prefix) -> const char * {
            const std::size_t n = std::string(prefix).size();
            return arg.rfind(prefix, 0) == 0 ? arg.c_str() + n
                                             : nullptr;
        };
        if (const char *v = value("--runtimes="))
            args.runtimes = splitCsv(v);
        else if (const char *v = value("--mixes="))
            args.mixes = splitCsv(v);
        else if (const char *v = value("--threads="))
            args.threads = static_cast<unsigned>(std::atoi(v));
        else if (const char *v = value("--shards="))
            args.shards = static_cast<unsigned>(std::atoi(v));
        else if (const char *v = value("--keys="))
            args.keys = std::strtoull(v, nullptr, 10);
        else if (const char *v = value("--ops="))
            args.opsPerThread = std::strtoull(v, nullptr, 10);
        else if (const char *v = value("--multiput="))
            args.multiPutFraction = std::atof(v);
        else if (const char *v = value("--group-commit="))
            args.groupCommit = static_cast<unsigned>(std::atoi(v));
        else if (const char *v = value("--dist=")) {
            args.dist = std::string(v) == "uniform"
                ? kv::KeyDist::Uniform
                : kv::KeyDist::Zipfian;
        } else if (!args.obs.accept(arg)) {
            SPECPMT_FATAL("unknown argument: %s", arg.c_str());
        }
    }
    for (const auto &name : args.runtimes) {
        if (!txn::isRuntimeName(name))
            SPECPMT_FATAL("unknown runtime: %s", name.c_str());
    }
    return args;
}

kv::Mix
mixFromName(const std::string &name)
{
    if (name == "A")
        return kv::Mix::A;
    if (name == "B")
        return kv::Mix::B;
    if (name == "C")
        return kv::Mix::C;
    SPECPMT_FATAL("unknown mix: %s (want A, B or C)", name.c_str());
}

std::uint64_t
nextPow2(std::uint64_t x)
{
    std::uint64_t p = 1;
    while (p < x)
        p <<= 1;
    return p;
}

struct Cell
{
    std::string runtime;
    std::string mix;
    kv::DriverResult result;
};

} // namespace

int
main(int argc, char **argv)
{
    const Args args = parseArgs(argc, argv);

    kv::DriverConfig driver_config;
    driver_config.threads = args.threads;
    driver_config.keys = args.keys;
    driver_config.opsPerThread = args.opsPerThread;
    driver_config.dist = args.dist;
    driver_config.multiPutFraction = args.multiPutFraction;

    std::printf("kv_ycsb: %u shards, %u threads, %llu keys, "
                "%llu ops/thread, %s keys\n",
                args.shards, args.threads,
                static_cast<unsigned long long>(args.keys),
                static_cast<unsigned long long>(args.opsPerThread),
                kv::keyDistName(args.dist));
    if (args.groupCommit > 0)
        std::printf("group commit: epoch sealed every %u relaxed ops\n",
                    args.groupCommit);
    std::printf("%-9s %-4s %12s %12s %9s %9s %9s %9s %10s %8s %12s\n",
                "runtime", "mix", "wall-kops", "sim-kops",
                "p50-us", "p95-us", "p99-us", "p999-us", "fences",
                "fn/tx", "pm-lines");

    std::vector<Cell> cells;
    for (const auto &runtime : args.runtimes) {
        for (const auto &mix_name : args.mixes) {
            kv::KvServiceConfig service_config;
            service_config.shards = args.shards;
            service_config.threads = args.threads;
            service_config.runtime = runtime;
            // Keep the per-shard load factor around 25% so probe
            // chains stay short at every shard size.
            service_config.bucketsPerShard = nextPow2(
                std::max<std::uint64_t>(1024,
                                        4 * args.keys / args.shards));
            if (args.groupCommit > 0) {
                service_config.runtimeOptions.groupCommit = true;
                service_config.epochMaxOps = args.groupCommit;
            }
            kv::KvService service(service_config);
            kv::loadKeyspace(service, driver_config);
            driver_config.relaxedPuts = args.groupCommit > 0;

            driver_config.mix = mixFromName(mix_name);
            auto result = kv::runClosedLoop(service, driver_config);
            service.shutdown();
            SPECPMT_ASSERT(result.failed == 0);

            // Latency over all ops: merge the two op-type histograms.
            LatencyHistogram latency = result.readLatency;
            latency.merge(result.updateLatency);
            std::uint64_t fences = 0;
            std::uint64_t pm_lines = 0;
            std::uint64_t txs = 0;
            for (const auto &shard : result.shards) {
                fences += shard.device.fences;
                pm_lines += shard.pmLineWrites;
                txs += shard.committedTxs;
            }
            const double fences_per_tx =
                txs > 0 ? static_cast<double>(fences) /
                              static_cast<double>(txs)
                        : 0.0;
            std::printf("%-9s %-4s %12.1f %12.1f %9.1f %9.1f %9.1f "
                        "%9.1f %10llu %8.3f %12llu\n",
                        runtime.c_str(), mix_name.c_str(),
                        result.throughputOps / 1e3,
                        result.simThroughputOps / 1e3,
                        latency.percentile(50) / 1e3,
                        latency.percentile(95) / 1e3,
                        latency.percentile(99) / 1e3,
                        latency.percentile(99.9) / 1e3,
                        static_cast<unsigned long long>(fences),
                        fences_per_tx,
                        static_cast<unsigned long long>(pm_lines));
            cells.push_back({runtime, mix_name, std::move(result)});
        }
    }

    // Machine-readable summary (the BENCH_kv.json artifact).
    std::printf("{\"bench\":\"kv_ycsb\",\"shards\":%u,\"threads\":%u,"
                "\"keys\":%llu,\"ops_per_thread\":%llu,\"dist\":\"%s\","
                "\"group_commit\":%u,"
                "\"results\":[",
                args.shards, args.threads,
                static_cast<unsigned long long>(args.keys),
                static_cast<unsigned long long>(args.opsPerThread),
                kv::keyDistName(args.dist), args.groupCommit);
    for (std::size_t i = 0; i < cells.size(); ++i) {
        const auto &cell = cells[i];
        LatencyHistogram latency = cell.result.readLatency;
        latency.merge(cell.result.updateLatency);
        std::uint64_t cell_fences = 0;
        std::uint64_t cell_txs = 0;
        for (const auto &shard : cell.result.shards) {
            cell_fences += shard.device.fences;
            cell_txs += shard.committedTxs;
        }
        std::printf("%s{\"runtime\":\"%s\",\"mix\":\"%s\","
                    "\"fences_per_tx\":%.4f,"
                    "\"ops\":%llu,"
                    "\"wall_ops_per_sec\":%.1f,"
                    "\"sim_ops_per_sec\":%.1f,"
                    "\"p50_ns\":%llu,\"p95_ns\":%llu,"
                    "\"p99_ns\":%llu,\"p999_ns\":%llu,"
                    "\"shards\":[",
                    i == 0 ? "" : ",", cell.runtime.c_str(),
                    cell.mix.c_str(),
                    cell_txs > 0
                        ? static_cast<double>(cell_fences) /
                              static_cast<double>(cell_txs)
                        : 0.0,
                    static_cast<unsigned long long>(
                        cell.result.totalOps()),
                    cell.result.throughputOps,
                    cell.result.simThroughputOps,
                    static_cast<unsigned long long>(
                        latency.percentile(50)),
                    static_cast<unsigned long long>(
                        latency.percentile(95)),
                    static_cast<unsigned long long>(
                        latency.percentile(99)),
                    static_cast<unsigned long long>(
                        latency.percentile(99.9)));
        for (std::size_t s = 0; s < cell.result.shards.size(); ++s) {
            const auto &shard = cell.result.shards[s];
            std::printf("%s{\"fences\":%llu,\"clwbs\":%llu,"
                        "\"pm_line_writes\":%llu,\"txs\":%llu}",
                        s == 0 ? "" : ",",
                        static_cast<unsigned long long>(
                            shard.device.fences),
                        static_cast<unsigned long long>(
                            shard.device.totalClwbs()),
                        static_cast<unsigned long long>(
                            shard.pmLineWrites),
                        static_cast<unsigned long long>(
                            shard.committedTxs));
        }
        std::printf("]}");
    }
    std::printf("]}\n");

    if (!args.obs.tracePath.empty()) {
        // The trace artifact should witness every span category
        // (tx/flush during the run above); drive a reclaim cycle and
        // a crash+recover so reclaim/recovery spans appear even on
        // short runs that never fill the log.
        kv::KvServiceConfig probe_config;
        probe_config.shards = 1;
        probe_config.threads = 1;
        probe_config.runtime = "spec";
        probe_config.bucketsPerShard = 1024;
        kv::KvService probe(probe_config);
        for (kv::KvKey key = 1; key <= 64; ++key)
            probe.put(0, key, kv::KvValue::tagged(key, key));
        if (auto *spec = dynamic_cast<core::SpecTx *>(
                &probe.shardRuntime(0))) {
            spec->reclaimNow();
        }
        probe.crash(pmem::CrashPolicy::nothing());
        probe.recover();
        probe.shutdown();
    }
    args.obs.writeArtifacts();
    return 0;
}
