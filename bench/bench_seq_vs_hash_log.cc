/**
 * @file
 * Section 4's design experiment: sequential speculative log versus the
 * memory-thrifty hash-table log (one in-place record per datum). The
 * paper measures the hash-table approach at a 3.2x slowdown because
 * it turns the log's sequential persistent-memory writes into
 * scattered ones that never benefit from XPLine write combining.
 */

#include <cstdio>

#include "bench/bench_util.hh"
#include "common/stats.hh"

using namespace specpmt;
using namespace specpmt::bench;

int
main(int argc, char **argv)
{
    const ObsSession obs_session(argc, argv);
    const double scale = parseScale(argc, argv);

    printHeader("Section 4: hash-table log slowdown vs sequential log",
                {"seq (ms)", "hash (ms)", "slowdown"});

    std::vector<double> slowdowns;
    for (const auto kind : workloads::allWorkloads()) {
        workloads::WorkloadConfig config;
        config.scale = scale;
        const auto seq = runSoftware(SwScheme::SpecSpmt, kind, config);
        const auto hash = runSoftware(SwScheme::HashLog, kind, config);
        const double slowdown = static_cast<double>(hash.ns) /
                                static_cast<double>(seq.ns);
        slowdowns.push_back(slowdown);
        printRow(workloads::workloadKindName(kind),
                 {static_cast<double>(seq.ns) / 1e6,
                  static_cast<double>(hash.ns) / 1e6, slowdown});
    }
    printRow("geomean", {0.0, 0.0, geomean(slowdowns)});
    std::printf("paper: hash-table log incurs a 3.2x slowdown\n");
    return 0;
}
