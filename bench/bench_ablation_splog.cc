/**
 * @file
 * Ablation study of software SpecPMT's design choices (the knobs
 * DESIGN.md calls out):
 *
 *  1. log block size — small blocks chain and flush more often, large
 *     blocks waste reclamation granularity;
 *  2. last-update entry deduplication (Section 4) — without it every
 *     repeated update of a datum appends a fresh record;
 *  3. reclamation threshold — how much log memory is traded for
 *     reclamation work.
 *
 * Workloads: kmeans-high (many repeated updates per transaction, the
 * dedup stress case) and vacation-low (mixed access).
 */

#include <cstdio>

#include "bench/bench_util.hh"
#include "core/spec_tx.hh"
#include "pmem/pmem_device.hh"
#include "pmem/pmem_pool.hh"

using namespace specpmt;
using namespace specpmt::bench;

namespace
{

struct AblationResult
{
    SimNs ns;
    std::size_t peakLogBytes;
    std::uint64_t reclaimCycles;
};

AblationResult
runConfigured(workloads::WorkloadKind kind, double scale,
              const core::SpecTxConfig &tx_config)
{
    pmem::PmemDevice dev(320u << 20);
    pmem::PmemPool pool(dev);
    core::SpecTx tx(pool, 1, tx_config);
    workloads::WorkloadConfig config;
    config.scale = scale;
    auto workload = workloads::makeWorkload(kind, config);

    workload->setup(tx);
    dev.clearStats();
    dev.timing().reset();
    dev.timeOnlyCallingThread();
    workload->run(tx);

    AblationResult result{dev.timing().now(), tx.peakLogBytes(),
                          tx.reclaimCycles()};
    tx.shutdown();
    SPECPMT_ASSERT(workload->verify(tx));
    return result;
}

} // namespace

int
main(int argc, char **argv)
{
    const ObsSession obs_session(argc, argv);
    const double scale = parseScale(argc, argv, 0.3);
    const workloads::WorkloadKind kinds[] = {
        workloads::WorkloadKind::KmeansHigh,
        workloads::WorkloadKind::VacationLow};

    std::printf("== Ablation 1: log block size ==\n");
    std::printf("%-16s%14s%14s%14s\n", "workload", "block (B)",
                "time (ms)", "peak log KB");
    for (const auto kind : kinds) {
        for (const std::size_t block : {256u, 1024u, 4096u, 16384u}) {
            core::SpecTxConfig config;
            config.backgroundReclaim = true;
            config.reclaimThresholdBytes = 8u << 20;
            config.logBlockSize = block;
            const auto result = runConfigured(kind, scale, config);
            std::printf("%-16s%14zu%14.2f%14zu\n",
                        workloads::workloadKindName(kind), block,
                        static_cast<double>(result.ns) / 1e6,
                        result.peakLogBytes / 1024);
        }
    }

    std::printf("\n== Ablation 2: last-update dedup (Section 4) ==\n");
    std::printf("(synthetic accumulator: each tx updates the same 4 "
                "slots 16 times)\n");
    std::printf("%-16s%14s%14s%14s\n", "workload", "dedup",
                "time (ms)", "peak log KB");
    for (const bool dedup : {true, false}) {
        pmem::PmemDevice dev(320u << 20);
        pmem::PmemPool pool(dev);
        core::SpecTxConfig config;
        config.backgroundReclaim = false;
        config.dedupEntries = dedup;
        core::SpecTx tx(pool, 1, config);
        const PmOff data = pool.alloc(64);
        tx.txBegin(0);
        for (unsigned i = 0; i < 8; ++i)
            tx.txStoreT<std::uint64_t>(0, data + i * 8, 0);
        tx.txCommit(0);
        dev.clearStats();
        dev.timing().reset();
        for (unsigned t = 0; t < 20000; ++t) {
            tx.txBegin(0);
            for (unsigned i = 0; i < 16; ++i) {
                for (unsigned s2 = 0; s2 < 4; ++s2) {
                    tx.txStoreT<std::uint64_t>(0, data + s2 * 8,
                                               t * 16 + i);
                }
            }
            tx.txCommit(0);
        }
        std::printf("%-16s%14s%14.2f%14zu\n", "accumulator",
                    dedup ? "on" : "off",
                    static_cast<double>(dev.timing().now()) / 1e6,
                    tx.peakLogBytes() / 1024);
    }

    std::printf("\n== Ablation 3: reclamation threshold ==\n");
    std::printf("%-16s%14s%14s%14s%14s\n", "workload", "thresh KB",
                "time (ms)", "peak log KB", "cycles");
    for (const auto kind : kinds) {
        for (const std::size_t threshold :
             {256u << 10, 1u << 20, 4u << 20, 32u << 20}) {
            core::SpecTxConfig config;
            config.backgroundReclaim = true;
            config.reclaimThresholdBytes = threshold;
            const auto result = runConfigured(kind, scale, config);
            std::printf("%-16s%14zu%14.2f%14zu%14llu\n",
                        workloads::workloadKindName(kind),
                        threshold >> 10,
                        static_cast<double>(result.ns) / 1e6,
                        result.peakLogBytes / 1024,
                        static_cast<unsigned long long>(
                            result.reclaimCycles));
        }
    }
    return 0;
}
