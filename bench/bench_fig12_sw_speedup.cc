/**
 * @file
 * Figure 12: software-solution speedups over PMDK on the emulated
 * ADR machine.
 *
 * Paper reference (geomean over STAMP): Kamino-Tx ~1.7x, SPHT ~2.9x,
 * SpecSPMT-DP 3.0x, SpecSPMT 5.1x; SpecSPMT peaks near 10x on the
 * kmeans configurations.
 */

#include <cstdio>

#include "bench/bench_util.hh"
#include "common/logging.hh"
#include "common/stats.hh"

using namespace specpmt;
using namespace specpmt::bench;

int
main(int argc, char **argv)
{
    const ObsSession obs_session(argc, argv);
    const double scale = parseScale(argc, argv);

    printHeader("Figure 12: speedup over PMDK",
                {"Kamino-Tx", "SPHT", "SpecSPMT-DP", "SpecSPMT"});

    const SwScheme schemes[] = {SwScheme::KaminoTx, SwScheme::Spht,
                                SwScheme::SpecSpmtDp,
                                SwScheme::SpecSpmt};
    std::vector<std::vector<double>> speedups(4);

    for (const auto kind : workloads::allWorkloads()) {
        workloads::WorkloadConfig config;
        config.scale = scale;
        const auto pmdk = runSoftware(SwScheme::Pmdk, kind, config);
        SPECPMT_ASSERT(pmdk.verified);

        std::vector<double> row;
        for (unsigned s = 0; s < 4; ++s) {
            const auto result = runSoftware(schemes[s], kind, config);
            SPECPMT_ASSERT(result.verified);
            // Identical logical outcome across schemes, by digest.
            SPECPMT_ASSERT(result.digest == pmdk.digest);
            const double speedup = static_cast<double>(pmdk.ns) /
                                   static_cast<double>(result.ns);
            speedups[s].push_back(speedup);
            row.push_back(speedup);
        }
        printRow(workloads::workloadKindName(kind), row);
    }

    printRow("geomean",
             {geomean(speedups[0]), geomean(speedups[1]),
              geomean(speedups[2]), geomean(speedups[3])});
    std::printf("paper geomean:  Kamino-Tx ~1.7  SPHT ~2.9  "
                "SpecSPMT-DP 3.0  SpecSPMT 5.1\n");
    return 0;
}
