/**
 * @file
 * Shared harness for the per-figure benchmark binaries: runs a
 * STAMP-analog workload under any software scheme on the emulated
 * ADR timing model, or records its trace and replays it through the
 * hardware models.
 */

#ifndef SPECPMT_BENCH_BENCH_UTIL_HH
#define SPECPMT_BENCH_BENCH_UTIL_HH

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "obs/artifacts.hh"
#include "pmem/pmem_device.hh"
#include "sim/machine.hh"
#include "txn/trace.hh"
#include "workloads/workload.hh"

namespace specpmt::bench
{

/** Software schemes of Figures 1 and 12. */
enum class SwScheme
{
    Direct,    ///< no crash consistency (the overhead baseline)
    Pmdk,
    KaminoTx,
    Spht,
    SpecSpmtDp,
    SpecSpmt,
    HashLog,   ///< Section 4's hash-table-log strawman
};

/** Display name matching the paper. */
const char *swSchemeName(SwScheme scheme);

/** Result of one software run. */
struct SwResult
{
    SimNs ns = 0;                  ///< simulated execution time
    pmem::DeviceStats deviceStats; ///< measured-phase event counts
    std::uint64_t pmLineWrites = 0;
    std::size_t peakLogBytes = 0;  ///< SpecSPMT log high-water mark
    std::size_t peakPoolBytes = 0;
    bool verified = false;
    std::uint64_t digest = 0;
};

/**
 * Run @p kind under @p scheme on a fresh emulated device and return
 * timing/traffic of the measured phase (setup excluded). Background
 * helper threads run untimed, mirroring the paper's dedicated-core
 * methodology.
 */
SwResult runSoftware(SwScheme scheme, workloads::WorkloadKind kind,
                     const workloads::WorkloadConfig &config);

/** Record the measured-phase trace of @p kind for the hardware sims. */
txn::MemTrace recordTrace(workloads::WorkloadKind kind,
                          const workloads::WorkloadConfig &config);

/** Pretty-print a header row for a figure table. */
void printHeader(const std::string &title,
                 const std::vector<std::string> &columns);

/** Print one row: workload label + numeric cells. */
void printRow(const std::string &label,
              const std::vector<double> &values, int precision = 2);

/**
 * Parse an optional "--scale=<float>" argument (workload size factor
 * relative to the reference inputs; default 1.0).
 */
double parseScale(int argc, char **argv, double fallback = 1.0);

/**
 * Declare at the top of a bench main(): parses
 * --metrics-out=/--trace-out= (enabling the tracer when a trace sink
 * is requested) and writes the requested artifacts when main
 * returns.
 */
class ObsSession
{
  public:
    ObsSession(int argc, char **argv);
    ~ObsSession();
    ObsSession(const ObsSession &) = delete;
    ObsSession &operator=(const ObsSession &) = delete;

  private:
    obs::OutputFlags flags_;
};

} // namespace specpmt::bench

#endif // SPECPMT_BENCH_BENCH_UTIL_HH
