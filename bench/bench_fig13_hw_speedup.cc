/**
 * @file
 * Figure 13: hardware-solution speedups over EDE on the trace-driven
 * simulator.
 *
 * Paper reference (geomean): HOOP 1.19x, SpecHPMT-DP ~1.0x,
 * SpecHPMT 1.41x, no-log 1.5x; on labyrinth and yada SpecHPMT can
 * beat no-log because sequential log writes replace scattered data
 * writes.
 */

#include <cstdio>

#include "bench/bench_util.hh"
#include "common/stats.hh"

using namespace specpmt;
using namespace specpmt::bench;

int
main(int argc, char **argv)
{
    const ObsSession obs_session(argc, argv);
    const double scale = parseScale(argc, argv);

    printHeader("Figure 13: speedup over EDE",
                {"HOOP", "SpecHPMT-DP", "SpecHPMT", "no-log"});

    const sim::HwScheme schemes[] = {
        sim::HwScheme::Hoop, sim::HwScheme::SpecHpmtDp,
        sim::HwScheme::SpecHpmt, sim::HwScheme::NoLog};
    std::vector<std::vector<double>> speedups(4);

    for (const auto kind : workloads::allWorkloads()) {
        workloads::WorkloadConfig config;
        config.scale = scale;
        const auto trace = recordTrace(kind, config);
        sim::SimConfig sim_config;
        const auto ede =
            sim::simulate(sim::HwScheme::Ede, sim_config, trace);

        std::vector<double> row;
        for (unsigned s = 0; s < 4; ++s) {
            const auto result =
                sim::simulate(schemes[s], sim_config, trace);
            const double speedup = static_cast<double>(ede.ns) /
                                   static_cast<double>(result.ns);
            speedups[s].push_back(speedup);
            row.push_back(speedup);
        }
        printRow(workloads::workloadKindName(kind), row);
    }

    printRow("geomean",
             {geomean(speedups[0]), geomean(speedups[1]),
              geomean(speedups[2]), geomean(speedups[3])});
    std::printf("paper geomean:  HOOP 1.19  SpecHPMT-DP ~1.0  "
                "SpecHPMT 1.41  no-log 1.50\n");
    return 0;
}
