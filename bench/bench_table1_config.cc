/**
 * @file
 * Table 1: system configuration of the simulated hardware.
 */

#include <cstdio>

#include "sim/sim_config.hh"

int
main()
{
    specpmt::sim::SimConfig config;
    std::printf("== Table 1: system configuration ==\n%s",
                config.toString().c_str());
    return 0;
}
