#include "bench/bench_util.hh"

#include <cstdio>

#include "common/logging.hh"
#include "core/spec_tx.hh"
#include "txn/runtime_factory.hh"
#include "txn/trace_recorder.hh"

namespace specpmt::bench
{

namespace
{

constexpr std::size_t kBenchPoolBytes = 320u << 20;

const char *
swSchemeRuntimeName(SwScheme scheme)
{
    switch (scheme) {
      case SwScheme::Direct:
        return "direct";
      case SwScheme::Pmdk:
        return "pmdk";
      case SwScheme::KaminoTx:
        return "kamino";
      case SwScheme::Spht:
        return "spht";
      case SwScheme::SpecSpmtDp:
        return "spec-dp";
      case SwScheme::SpecSpmt:
        return "spec";
      case SwScheme::HashLog:
        return "hashlog";
    }
    SPECPMT_PANIC("unknown software scheme");
}

std::unique_ptr<txn::TxRuntime>
makeSwRuntime(SwScheme scheme, pmem::PmemPool &pool)
{
    return txn::makeRuntime(swSchemeRuntimeName(scheme), pool, 1);
}

} // namespace

const char *
swSchemeName(SwScheme scheme)
{
    switch (scheme) {
      case SwScheme::Direct:
        return "no-tx";
      case SwScheme::Pmdk:
        return "PMDK";
      case SwScheme::KaminoTx:
        return "Kamino-Tx";
      case SwScheme::Spht:
        return "SPHT";
      case SwScheme::SpecSpmtDp:
        return "SpecSPMT-DP";
      case SwScheme::SpecSpmt:
        return "SpecSPMT";
      case SwScheme::HashLog:
        return "hash-splog";
    }
    return "?";
}

SwResult
runSoftware(SwScheme scheme, workloads::WorkloadKind kind,
            const workloads::WorkloadConfig &config)
{
    pmem::PmemDevice dev(kBenchPoolBytes);
    pmem::PmemPool pool(dev);
    auto runtime = makeSwRuntime(scheme, pool);
    auto workload = workloads::makeWorkload(kind, config);

    workload->setup(*runtime);

    // Measure only the transactional phase, on this thread's clock.
    dev.clearStats();
    dev.timing().reset();
    dev.timeOnlyCallingThread();

    workload->run(*runtime);

    SwResult result;
    result.ns = dev.timing().now();
    result.deviceStats = dev.stats();
    result.pmLineWrites = dev.timing().pmLineWrites();
    if (auto *spec = dynamic_cast<core::SpecTx *>(runtime.get()))
        result.peakLogBytes = spec->peakLogBytes();
    result.peakPoolBytes = pool.peakBytesAllocated();

    runtime->shutdown();
    result.verified = workload->verify(*runtime);
    result.digest = workload->digest(*runtime);
    return result;
}

txn::MemTrace
recordTrace(workloads::WorkloadKind kind,
            const workloads::WorkloadConfig &config)
{
    pmem::PmemDevice dev(kBenchPoolBytes);
    pmem::PmemPool pool(dev);
    txn::TraceRecorder recorder(pool, 1);
    auto workload = workloads::makeWorkload(kind, config);

    workload->setup(recorder);
    recorder.startRecording();
    workload->run(recorder);
    recorder.stopRecording();
    SPECPMT_ASSERT(workload->verify(recorder));
    auto trace = recorder.takeTrace();
    trace.residentBytes = pool.bytesAllocated();
    return trace;
}

void
printHeader(const std::string &title,
            const std::vector<std::string> &columns)
{
    std::printf("\n== %s ==\n", title.c_str());
    std::printf("%-16s", "workload");
    for (const auto &column : columns)
        std::printf("%14s", column.c_str());
    std::printf("\n");
}

void
printRow(const std::string &label, const std::vector<double> &values,
         int precision)
{
    std::printf("%-16s", label.c_str());
    for (double value : values)
        std::printf("%14.*f", precision, value);
    std::printf("\n");
}

double
parseScale(int argc, char **argv, double fallback)
{
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg.rfind("--scale=", 0) == 0)
            return std::stod(arg.substr(8));
    }
    return fallback;
}

ObsSession::ObsSession(int argc, char **argv)
    : flags_(obs::parseOutputFlags(argc, argv))
{
}

ObsSession::~ObsSession()
{
    flags_.writeArtifacts();
}

} // namespace specpmt::bench
