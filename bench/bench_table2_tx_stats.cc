/**
 * @file
 * Table 2: size and number of transactions per STAMP-analog workload.
 *
 * The paper's reference inputs run millions of transactions; these
 * kernels run the same access patterns at a reduced scale, so the
 * columns to compare are the *average transaction size* (reproduced
 * directly) and the relative ordering of transaction/update counts.
 */

#include <cstdio>

#include "bench/bench_util.hh"

using namespace specpmt;
using namespace specpmt::bench;

namespace
{

/** Paper Table 2 reference values for side-by-side comparison. */
struct PaperRow
{
    double avgBytes;
    double numTxMillions;
    double numUpdatesMillions;
};

PaperRow
paperRow(workloads::WorkloadKind kind)
{
    using K = workloads::WorkloadKind;
    switch (kind) {
      case K::Genome:
        return {7.2, 2.489, 7.231};
      case K::Intruder:
        return {20.5, 23.428, 106.976};
      case K::KmeansLow:
        return {101, 9.874, 266.600};
      case K::KmeansHigh:
        return {101, 4.107, 110.887};
      case K::Labyrinth:
        return {1420, 0.001026, 0.184};
      case K::Ssca2:
        return {16, 22.362, 89.449};
      case K::VacationLow:
        return {44.2, 4.194, 31.582};
      case K::VacationHigh:
        return {67.8, 4.194, 43.951};
      case K::Yada:
        return {175.6, 2.415, 57.845};
    }
    return {};
}

} // namespace

int
main(int argc, char **argv)
{
    const ObsSession obs_session(argc, argv);
    const double scale = parseScale(argc, argv);

    std::printf("== Table 2: size and number of transactions ==\n");
    std::printf("%-16s%14s%14s%14s%14s%14s\n", "workload",
                "avg size (B)", "paper avg", "num tx", "num updates",
                "upd/tx");
    for (const auto kind : workloads::allWorkloads()) {
        workloads::WorkloadConfig config;
        config.scale = scale;
        const auto trace = recordTrace(kind, config);
        const auto paper = paperRow(kind);
        std::printf("%-16s%14.1f%14.1f%14llu%14llu%14.1f\n",
                    workloads::workloadKindName(kind),
                    trace.avgTxBytes(), paper.avgBytes,
                    static_cast<unsigned long long>(trace.numTx),
                    static_cast<unsigned long long>(trace.numUpdates),
                    trace.numTx
                        ? static_cast<double>(trace.numUpdates) /
                              static_cast<double>(trace.numTx)
                        : 0.0);
    }
    return 0;
}
