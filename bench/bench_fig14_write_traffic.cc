/**
 * @file
 * Figure 14: persistent-memory write-traffic reduction over EDE
 * (higher is better).
 *
 * Paper reference: EDE and SpecHPMT-DP incur the most traffic; HOOP
 * reduces ~18.9% via cross-transaction coalescing; SpecHPMT delivers
 * the second-lowest traffic; no-log the lowest on most applications.
 */

#include <cstdio>

#include "bench/bench_util.hh"
#include "common/stats.hh"

using namespace specpmt;
using namespace specpmt::bench;

int
main(int argc, char **argv)
{
    const ObsSession obs_session(argc, argv);
    const double scale = parseScale(argc, argv);

    printHeader("Figure 14: write-traffic reduction over EDE, percent",
                {"HOOP", "SpecHPMT-DP", "SpecHPMT", "no-log"});

    const sim::HwScheme schemes[] = {
        sim::HwScheme::Hoop, sim::HwScheme::SpecHpmtDp,
        sim::HwScheme::SpecHpmt, sim::HwScheme::NoLog};
    std::vector<std::vector<double>> ratios(4);

    for (const auto kind : workloads::allWorkloads()) {
        workloads::WorkloadConfig config;
        config.scale = scale;
        const auto trace = recordTrace(kind, config);
        sim::SimConfig sim_config;
        const auto ede =
            sim::simulate(sim::HwScheme::Ede, sim_config, trace);

        std::vector<double> row;
        for (unsigned s = 0; s < 4; ++s) {
            const auto result =
                sim::simulate(schemes[s], sim_config, trace);
            const double reduction =
                100.0 * (1.0 - static_cast<double>(
                                   result.pmLineWrites()) /
                                   static_cast<double>(
                                       ede.pmLineWrites()));
            ratios[s].push_back(reduction);
            row.push_back(reduction);
        }
        printRow(workloads::workloadKindName(kind), row, 1);
    }

    // Arithmetic mean for reductions (they can be ~0 or negative).
    const auto mean = [](const std::vector<double> &values) {
        double sum = 0;
        for (double value : values)
            sum += value;
        return sum / static_cast<double>(values.size());
    };
    printRow("mean",
             {mean(ratios[0]), mean(ratios[1]), mean(ratios[2]),
              mean(ratios[3])},
             1);
    std::printf("paper: HOOP ~18.9%% reduction; SpecHPMT second-lowest "
                "traffic; EDE/SpecHPMT-DP highest\n");
    return 0;
}
