/**
 * @file
 * Microbenchmarks (google-benchmark) of the primitive costs the paper
 * reasons about: the per-update persist barrier of undo logging vs
 * the fence-free speculative append, commit anatomy, checksum cost,
 * and the sequential-vs-random PM write gap of the timing model.
 *
 * Two time domains appear here: google-benchmark measures host CPU
 * time of the emulation (a proxy for implementation overhead), and
 * each benchmark also reports the *simulated* nanoseconds per
 * operation as the "sim_ns" counter — the number the paper's claims
 * are about.
 */

#include <benchmark/benchmark.h>

#include "common/crc32.hh"
#include "core/spec_tx.hh"
#include "pmem/pmem_device.hh"
#include "pmem/pmem_pool.hh"
#include "txn/undo_tx.hh"

using namespace specpmt;

namespace
{

void
BM_UndoLoggedStore(benchmark::State &state)
{
    pmem::PmemDevice dev(64u << 20);
    pmem::PmemPool pool(dev);
    txn::PmdkUndoTx tx(pool, 1);
    const PmOff data = pool.alloc(1u << 20);

    std::uint64_t i = 0;
    for (auto _ : state) {
        tx.txBegin(0);
        tx.txStoreT<std::uint64_t>(0, data + (i % 131072) * 8, i);
        tx.txCommit(0);
        ++i;
    }
    state.counters["sim_ns"] = benchmark::Counter(
        static_cast<double>(dev.timing().now()) /
            static_cast<double>(state.iterations()),
        benchmark::Counter::kAvgThreads);
    state.counters["fences"] = benchmark::Counter(
        static_cast<double>(dev.stats().fences) /
        static_cast<double>(state.iterations()));
}
BENCHMARK(BM_UndoLoggedStore);

void
BM_SpeculativeLoggedStore(benchmark::State &state)
{
    pmem::PmemDevice dev(256u << 20);
    pmem::PmemPool pool(dev);
    core::SpecTxConfig config;
    config.backgroundReclaim = false;
    core::SpecTx tx(pool, 1, config);
    const PmOff data = pool.alloc(1u << 20);

    std::uint64_t i = 0;
    for (auto _ : state) {
        tx.txBegin(0);
        tx.txStoreT<std::uint64_t>(0, data + (i % 131072) * 8, i);
        tx.txCommit(0);
        ++i;
        if (i % 8192 == 0)
            tx.reclaimNow();
    }
    state.counters["sim_ns"] = benchmark::Counter(
        static_cast<double>(dev.timing().now()) /
            static_cast<double>(state.iterations()),
        benchmark::Counter::kAvgThreads);
    state.counters["fences"] = benchmark::Counter(
        static_cast<double>(dev.stats().fences) /
        static_cast<double>(state.iterations()));
}
BENCHMARK(BM_SpeculativeLoggedStore);

void
BM_SpecCommitBatch(benchmark::State &state)
{
    // Cost of one commit as the write set grows: the flush batch is
    // sequential, so simulated cost grows sublinearly in entries.
    const auto writes = static_cast<unsigned>(state.range(0));
    pmem::PmemDevice dev(256u << 20);
    pmem::PmemPool pool(dev);
    core::SpecTxConfig config;
    config.backgroundReclaim = false;
    core::SpecTx tx(pool, 1, config);
    const PmOff data = pool.alloc(1u << 20);

    std::uint64_t i = 0;
    for (auto _ : state) {
        tx.txBegin(0);
        for (unsigned w = 0; w < writes; ++w)
            tx.txStoreT<std::uint64_t>(0, data + ((i + w) % 131072) * 8,
                                       i);
        tx.txCommit(0);
        i += writes;
        if (i % (1u << 16) == 0)
            tx.reclaimNow();
    }
    state.counters["sim_ns"] = benchmark::Counter(
        static_cast<double>(dev.timing().now()) /
            static_cast<double>(state.iterations()),
        benchmark::Counter::kAvgThreads);
}
BENCHMARK(BM_SpecCommitBatch)->Arg(1)->Arg(4)->Arg(16)->Arg(64);

void
BM_Crc32c(benchmark::State &state)
{
    std::vector<std::uint8_t> buffer(
        static_cast<std::size_t>(state.range(0)), 0xA5);
    for (auto _ : state)
        benchmark::DoNotOptimize(crc32c(buffer.data(), buffer.size()));
    state.SetBytesProcessed(
        static_cast<std::int64_t>(state.iterations()) *
        state.range(0));
}
BENCHMARK(BM_Crc32c)->Arg(64)->Arg(256)->Arg(4096);

void
BM_SequentialVsRandomPmWrites(benchmark::State &state)
{
    // The timing-model property underpinning speculative logging's
    // advantage: flushing N sequential lines is cheaper than flushing
    // N scattered lines.
    const bool sequential = state.range(0) == 1;
    pmem::PmemDevice dev(64u << 20);
    std::uint64_t i = 0;
    for (auto _ : state) {
        for (unsigned n = 0; n < 16; ++n) {
            const std::uint64_t line =
                sequential ? (i + n) % 500000
                           : ((i + n) * 977) % 500000;
            dev.storeT<std::uint64_t>(line * kCacheLineSize, i);
            dev.clwb(line * kCacheLineSize);
        }
        dev.sfence();
        i += 16;
    }
    state.counters["sim_ns_per_line"] = benchmark::Counter(
        static_cast<double>(dev.timing().now()) /
        static_cast<double>(state.iterations() * 16));
}
BENCHMARK(BM_SequentialVsRandomPmWrites)
    ->Arg(1)
    ->Arg(0)
    ->ArgNames({"sequential"});

} // namespace

BENCHMARK_MAIN();
